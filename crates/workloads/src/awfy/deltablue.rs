//! DeltaBlue: the incremental constraint solver, following the benchmark's
//! projection-chain structure: a chain of variables connected by equality
//! and scale constraints with *strengths*, a planner that extracts an
//! execution plan in strength order, and an edit phase that adds a
//! strong edit constraint at the head, re-plans, drives values through the
//! chain and removes it again. Virtual dispatch over a constraint
//! hierarchy.

use nimage_ir::{BinOp, ClassId, ProgramBuilder, TypeRef};

use crate::harness::Harness;

// Strengths: lower is stronger, as in the original benchmark.
const REQUIRED: i64 = 0;
const STRONG_PREFERRED: i64 = 1;
const NORMAL: i64 = 4;
const WEAKEST: i64 = 6;

pub(crate) fn install(pb: &mut ProgramBuilder, h: &Harness) -> ClassId {
    let variable = pb.add_class("awfy.deltablue.Variable", None);
    let f_value = pb.add_instance_field(variable, "value", TypeRef::Int);
    let f_walk = pb.add_instance_field(variable, "walkStrength", TypeRef::Int);

    // Constraint base: input → output with a strength and a satisfied flag.
    let constraint = pb.add_class("awfy.deltablue.Constraint", None);
    let f_in = pb.add_instance_field(constraint, "input", TypeRef::Object(variable));
    let f_out = pb.add_instance_field(constraint, "output", TypeRef::Object(variable));
    let f_strength = pb.add_instance_field(constraint, "strength", TypeRef::Int);
    let f_sat = pb.add_instance_field(constraint, "satisfied", TypeRef::Bool);

    // Constraint.execute(): base does nothing.
    let exec_base = pb.declare_virtual(constraint, "execute", &[], None);
    let mut f = pb.body(exec_base);
    f.ret(None);
    pb.finish_body(exec_base, f);
    let exec_sel = pb.intern_selector("execute", 0);

    // EqualityConstraint: out.value = in.value.
    let eq_cls = pb.add_class("awfy.deltablue.EqualityConstraint", Some(constraint));
    let eq_exec = pb.declare_virtual(eq_cls, "execute", &[], None);
    let mut f = pb.body(eq_exec);
    let this = f.this();
    let input = f.get_field(this, f_in);
    let output = f.get_field(this, f_out);
    let v = f.get_field(input, f_value);
    f.put_field(output, f_value, v);
    let w = f.get_field(input, f_walk);
    f.put_field(output, f_walk, w);
    f.ret(None);
    pb.finish_body(eq_exec, f);

    // ScaleConstraint: out.value = in.value * 2 + 1.
    let scale_cls = pb.add_class("awfy.deltablue.ScaleConstraint", Some(constraint));
    let scale_exec = pb.declare_virtual(scale_cls, "execute", &[], None);
    let mut f = pb.body(scale_exec);
    let this = f.this();
    let input = f.get_field(this, f_in);
    let output = f.get_field(this, f_out);
    let v = f.get_field(input, f_value);
    let two = f.iconst(2);
    let one = f.iconst(1);
    let scaled = f.mul(v, two);
    let v1 = f.add(scaled, one);
    f.put_field(output, f_value, v1);
    let w = f.get_field(input, f_walk);
    f.put_field(output, f_walk, w);
    f.ret(None);
    pb.finish_body(scale_exec, f);

    // EditConstraint: out.value = the edit value (set externally on the
    // input variable), REQUIRED strength.
    let edit_cls = pb.add_class("awfy.deltablue.EditConstraint", Some(constraint));
    let edit_exec = pb.declare_virtual(edit_cls, "execute", &[], None);
    let mut f = pb.body(edit_exec);
    let this = f.this();
    let input = f.get_field(this, f_in);
    let output = f.get_field(this, f_out);
    let v = f.get_field(input, f_value);
    f.put_field(output, f_value, v);
    let req = f.iconst(REQUIRED);
    f.put_field(output, f_walk, req);
    f.ret(None);
    pb.finish_body(edit_exec, f);

    let cls = pb.add_class("awfy.deltablue.DeltaBlue", Some(h.benchmark_cls));
    let f_cons = pb.add_instance_field(
        cls,
        "constraints",
        TypeRef::array_of(TypeRef::Object(constraint)),
    );
    let f_ncons = pb.add_instance_field(cls, "ncons", TypeRef::Int);
    let f_plan = pb.add_instance_field(cls, "plan", TypeRef::array_of(TypeRef::Int));

    // addConstraint(this, c)
    let add_con = pb.declare_virtual(cls, "addConstraint", &[TypeRef::Object(constraint)], None);
    let mut f = pb.body(add_con);
    let this = f.this();
    let c = f.param(1);
    let t = f.bconst(true);
    f.put_field(c, f_sat, t);
    let cons = f.get_field(this, f_cons);
    let n = f.get_field(this, f_ncons);
    f.array_set(cons, n, c);
    let one = f.iconst(1);
    let n1 = f.add(n, one);
    f.put_field(this, f_ncons, n1);
    f.ret(None);
    pb.finish_body(add_con, f);
    let add_con_sel = pb.intern_selector("addConstraint", 1);

    // makePlan(this): selection-sort the satisfied constraints by strength
    // (stronger — numerically smaller — first) into the plan array.
    let make_plan = pb.declare_virtual(cls, "makePlan", &[], Some(TypeRef::Int));
    let mut f = pb.body(make_plan);
    let this = f.this();
    let cons = f.get_field(this, f_cons);
    let n = f.get_field(this, f_ncons);
    let plan = f.new_array(TypeRef::Int, n);
    f.put_field(this, f_plan, plan);
    let len = f.iconst(0);
    // Copy satisfied constraint indices.
    let from = f.iconst(0);
    f.for_range(from, n, |f, i| {
        let c = f.array_get(cons, i);
        let sat = f.get_field(c, f_sat);
        f.if_then(sat, |f| {
            f.array_set(plan, len, i);
            let one = f.iconst(1);
            let l1 = f.add(len, one);
            f.assign(len, l1);
        });
    });
    // Selection sort by strength.
    let from = f.iconst(0);
    f.for_range(from, len, |f, i| {
        let best = f.copy(i);
        let one = f.iconst(1);
        let j = f.add(i, one);
        f.while_loop(
            |f| f.lt(j, len),
            |f| {
                let cj_idx = f.array_get(plan, j);
                let cb_idx = f.array_get(plan, best);
                let cj = f.array_get(cons, cj_idx);
                let cb = f.array_get(cons, cb_idx);
                let sj = f.get_field(cj, f_strength);
                let sb = f.get_field(cb, f_strength);
                let stronger = f.lt(sj, sb);
                f.if_then(stronger, |f| {
                    f.assign(best, j);
                });
                let one = f.iconst(1);
                let j1 = f.add(j, one);
                f.assign(j, j1);
            },
        );
        let ne = f.ne(best, i);
        f.if_then(ne, |f| {
            let a = f.array_get(plan, i);
            let b = f.array_get(plan, best);
            f.array_set(plan, i, b);
            f.array_set(plan, best, a);
        });
    });
    f.ret(Some(len));
    pb.finish_body(make_plan, f);
    let make_plan_sel = pb.intern_selector("makePlan", 0);

    // execPlan(this, len): run the planned constraints in order.
    let exec_plan = pb.declare_virtual(cls, "execPlan", &[TypeRef::Int], None);
    let mut f = pb.body(exec_plan);
    let this = f.this();
    let len = f.param(1);
    let cons = f.get_field(this, f_cons);
    let plan = f.get_field(this, f_plan);
    let from = f.iconst(0);
    f.for_range(from, len, |f, i| {
        let idx = f.array_get(plan, i);
        let c = f.array_get(cons, idx);
        f.call_virtual(constraint, exec_sel, &[c], false);
    });
    f.ret(None);
    pb.finish_body(exec_plan, f);
    let exec_plan_sel = pb.intern_selector("execPlan", 1);

    let bench = pb.declare_virtual(cls, "benchmark", &[], Some(TypeRef::Int));
    let mut f = pb.body(bench);
    let this = f.this();
    // Build a chain of 40 variables with alternating equality/scale
    // constraints of varying strength.
    let n = f.iconst(40);
    let vars = f.new_array(TypeRef::Object(variable), n);
    let from = f.iconst(0);
    f.for_range(from, n, |f, i| {
        let v = f.new_object(variable);
        f.put_field(v, f_value, i);
        let weak = f.iconst(WEAKEST);
        f.put_field(v, f_walk, weak);
        f.array_set(vars, i, v);
    });
    let one = f.iconst(1);
    let n_cons = f.sub(n, one);
    let cons_cap = f.add(n_cons, one); // room for the edit constraint
    let cons = f.new_array(TypeRef::Object(constraint), cons_cap);
    f.put_field(this, f_cons, cons);
    let zero = f.iconst(0);
    f.put_field(this, f_ncons, zero);
    let from = f.iconst(0);
    f.for_range(from, n_cons, |f, i| {
        let two = f.iconst(2);
        let parity = f.rem(i, two);
        let zero = f.iconst(0);
        let even = f.eq(parity, zero);
        let c = f.local();
        f.if_then_else(
            even,
            |f| {
                let e = f.new_object(eq_cls);
                f.assign(c, e);
            },
            |f| {
                let s = f.new_object(scale_cls);
                f.assign(c, s);
            },
        );
        let vin = f.array_get(vars, i);
        let one = f.iconst(1);
        let i1 = f.add(i, one);
        let vout = f.array_get(vars, i1);
        f.put_field(c, f_in, vin);
        f.put_field(c, f_out, vout);
        // Strength varies along the chain: stronger near the head.
        let three = f.iconst(3);
        let m = f.rem(i, three);
        let base = f.iconst(STRONG_PREFERRED);
        let strength = f.add(base, m);
        f.put_field(c, f_strength, strength);
        f.call_virtual(cls, add_con_sel, &[this, c], false);
    });

    // Edit phase: attach a REQUIRED edit constraint feeding the head from a
    // scratch variable, plan once, then drive 10 edit values through.
    let scratch = f.new_object(variable);
    let weak = f.iconst(NORMAL);
    f.put_field(scratch, f_walk, weak);
    let edit = f.new_object(edit_cls);
    f.put_field(edit, f_in, scratch);
    let zero = f.iconst(0);
    let head = f.array_get(vars, zero);
    f.put_field(edit, f_out, head);
    let req = f.iconst(REQUIRED);
    f.put_field(edit, f_strength, req);
    f.call_virtual(cls, add_con_sel, &[this, edit], false);

    let plan_len = f.call_virtual(cls, make_plan_sel, &[this], true).unwrap();
    let from = f.iconst(0);
    let rounds = f.iconst(10);
    f.for_range(from, rounds, |f, round| {
        f.put_field(scratch, f_value, round);
        f.call_virtual(cls, exec_plan_sel, &[this, plan_len], false);
    });
    // Remove the edit constraint and re-plan (the benchmark's remove
    // phase); run once more without it.
    let fls = f.bconst(false);
    f.put_field(edit, f_sat, fls);
    let plan_len2 = f.call_virtual(cls, make_plan_sel, &[this], true).unwrap();
    f.call_virtual(cls, exec_plan_sel, &[this, plan_len2], false);

    // Checksum: tail value and walkStrength, bounded.
    let one = f.iconst(1);
    let last_idx = f.sub(n, one);
    let last = f.array_get(vars, last_idx);
    let v = f.get_field(last, f_value);
    let w = f.get_field(last, f_walk);
    let k10 = f.iconst(10);
    let scaled = f.mul(v, k10);
    let mixed = f.add(scaled, w);
    let mask = f.iconst(0xffff);
    let out = f.bin(BinOp::And, mixed, mask);
    f.ret(Some(out));
    pb.finish_body(bench, f);

    cls
}
