//! List: the classic recursive linked-list benchmark (`tail(makeList(15),
//! makeList(10), makeList(6))`), heavy on allocation and pointer chasing.

use nimage_ir::{BinOp, ClassId, ProgramBuilder, TypeRef};

use crate::harness::Harness;

pub(crate) fn install(pb: &mut ProgramBuilder, h: &Harness) -> ClassId {
    let elem = pb.add_class("awfy.list.Element", None);
    let f_val = pb.add_instance_field(elem, "val", TypeRef::Int);
    let f_next = pb.add_instance_field(elem, "next", TypeRef::Object(elem));

    let cls = pb.add_class("awfy.list.List", Some(h.benchmark_cls));

    // makeList(length) -> Element
    let make_list = pb.declare_static(
        cls,
        "makeList",
        &[TypeRef::Int],
        Some(TypeRef::Object(elem)),
    );
    let mut f = pb.body(make_list);
    let n = f.param(0);
    let zero = f.iconst(0);
    let empty = f.eq(n, zero);
    f.if_then_else(
        empty,
        |f| {
            let null = f.null();
            f.ret(Some(null));
        },
        |f| {
            let one = f.iconst(1);
            let n1 = f.sub(n, one);
            let rest = f.call_static(make_list, &[n1], true).unwrap();
            let e = f.new_object(elem);
            f.put_field(e, f_val, n);
            f.put_field(e, f_next, rest);
            f.ret(Some(e));
        },
    );
    pb.finish_body(make_list, f);

    // length(list) -> Int
    let length = pb.declare_static(cls, "length", &[TypeRef::Object(elem)], Some(TypeRef::Int));
    let mut f = pb.body(length);
    let list = f.param(0);
    let null = f.null();
    let is_nil = f.bin(BinOp::Eq, list, null);
    f.if_then_else(
        is_nil,
        |f| {
            let zero = f.iconst(0);
            f.ret(Some(zero));
        },
        |f| {
            let next = f.get_field(list, f_next);
            let rest = f.call_static(length, &[next], true).unwrap();
            let one = f.iconst(1);
            let r = f.add(rest, one);
            f.ret(Some(r));
        },
    );
    pb.finish_body(length, f);

    // isShorterThan(x, y) -> Bool
    let shorter = pb.declare_static(
        cls,
        "isShorterThan",
        &[TypeRef::Object(elem), TypeRef::Object(elem)],
        Some(TypeRef::Bool),
    );
    let mut f = pb.body(shorter);
    let x = f.copy(f.param(0));
    let y = f.copy(f.param(1));
    let null = f.null();
    let result = f.local();
    let fls = f.bconst(false);
    f.assign(result, fls);
    let done = f.bconst(false);
    f.while_loop(
        |f| f.un(nimage_ir::UnOp::Not, done),
        |f| {
            let y_nil = f.bin(BinOp::Eq, y, null);
            f.if_then_else(
                y_nil,
                |f| {
                    let fls = f.bconst(false);
                    f.assign(result, fls);
                    let t = f.bconst(true);
                    f.assign(done, t);
                },
                |f| {
                    let x_nil = f.bin(BinOp::Eq, x, null);
                    f.if_then_else(
                        x_nil,
                        |f| {
                            let t = f.bconst(true);
                            f.assign(result, t);
                            f.assign(done, t);
                        },
                        |f| {
                            let xn = f.get_field(x, f_next);
                            let yn = f.get_field(y, f_next);
                            f.assign(x, xn);
                            f.assign(y, yn);
                        },
                    );
                },
            );
        },
    );
    f.ret(Some(result));
    pb.finish_body(shorter, f);

    // tail(x, y, z) -> Element  (the Takeuchi-style recursion)
    let tail = pb.declare_static(
        cls,
        "tail",
        &[
            TypeRef::Object(elem),
            TypeRef::Object(elem),
            TypeRef::Object(elem),
        ],
        Some(TypeRef::Object(elem)),
    );
    let mut f = pb.body(tail);
    let x = f.param(0);
    let y = f.param(1);
    let z = f.param(2);
    let yx = f.call_static(shorter, &[y, x], true).unwrap();
    f.if_then_else(
        yx,
        |f| {
            let xn = f.get_field(x, f_next);
            let a = f.call_static(tail, &[xn, y, z], true).unwrap();
            let yn = f.get_field(y, f_next);
            let b = f.call_static(tail, &[yn, z, x], true).unwrap();
            let zn = f.get_field(z, f_next);
            let c = f.call_static(tail, &[zn, x, y], true).unwrap();
            let r = f.call_static(tail, &[a, b, c], true).unwrap();
            f.ret(Some(r));
        },
        |f| {
            f.ret(Some(z));
        },
    );
    pb.finish_body(tail, f);

    let bench = pb.declare_virtual(cls, "benchmark", &[], Some(TypeRef::Int));
    let mut f = pb.body(bench);
    let a = f.iconst(15);
    let b = f.iconst(10);
    let c = f.iconst(6);
    let lx = f.call_static(make_list, &[a], true).unwrap();
    let ly = f.call_static(make_list, &[b], true).unwrap();
    let lz = f.call_static(make_list, &[c], true).unwrap();
    let r = f.call_static(tail, &[lx, ly, lz], true).unwrap();
    let len = f.call_static(length, &[r], true).unwrap();
    f.ret(Some(len));
    pb.finish_body(bench, f);

    cls
}
