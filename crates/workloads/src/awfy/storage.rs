//! Storage: build a random tree of arrays, stressing allocation and the
//! heap graph. Returns the number of allocated tree nodes.

use nimage_ir::{ClassId, ProgramBuilder, TypeRef};

use crate::harness::Harness;

pub(crate) fn install(pb: &mut ProgramBuilder, h: &Harness) -> ClassId {
    let node = pb.add_class("awfy.storage.TreeArray", None);
    let f_kids = pb.add_instance_field(node, "kids", TypeRef::array_of(TypeRef::Object(node)));

    let cls = pb.add_class("awfy.storage.Storage", Some(h.benchmark_cls));
    let f_count = pb.add_instance_field(cls, "count", TypeRef::Int);

    // buildTreeDepth(this, depth, random) -> TreeArray
    let build = pb.declare_virtual(
        cls,
        "buildTreeDepth",
        &[TypeRef::Int, TypeRef::Object(h.random_cls)],
        Some(TypeRef::Object(node)),
    );
    let build_sel = pb.intern_selector("buildTreeDepth", 2);
    let mut f = pb.body(build);
    let this = f.this();
    let depth = f.param(1);
    let rng = f.param(2);
    let c0 = f.get_field(this, f_count);
    let one = f.iconst(1);
    let c1 = f.add(c0, one);
    f.put_field(this, f_count, c1);

    let n = f.new_object(node);
    let leaf = f.eq(depth, one);
    f.if_then_else(
        leaf,
        |f| {
            // Leaf width from the random stream: 1 + (next() % 10) + 1.
            let r = f
                .call_virtual(h.random_cls, h.next_sel, &[rng], true)
                .unwrap();
            let ten = f.iconst(10);
            let m = f.rem(r, ten);
            let one = f.iconst(1);
            let w = f.add(m, one);
            let kids = f.new_array(TypeRef::Object(node), w);
            f.put_field(n, f_kids, kids);
            f.ret(Some(n));
        },
        |f| {
            let four = f.iconst(4);
            let kids = f.new_array(TypeRef::Object(node), four);
            let one = f.iconst(1);
            let d1 = f.sub(depth, one);
            let from = f.iconst(0);
            f.for_range(from, four, |f, i| {
                let child = f
                    .call_virtual(cls, build_sel, &[this, d1, rng], true)
                    .unwrap();
                f.array_set(kids, i, child);
            });
            f.put_field(n, f_kids, kids);
            f.ret(Some(n));
        },
    );
    pb.finish_body(build, f);

    let bench = pb.declare_virtual(cls, "benchmark", &[], Some(TypeRef::Int));
    let mut f = pb.body(bench);
    let this = f.this();
    let zero = f.iconst(0);
    f.put_field(this, f_count, zero);
    let rng = f.new_object(h.random_cls);
    let seed = f.iconst(74755);
    f.put_field(rng, h.random_seed, seed);
    let depth = f.iconst(6);
    let _tree = f
        .call_virtual(cls, build_sel, &[this, depth, rng], true)
        .unwrap();
    let count = f.get_field(this, f_count);
    f.ret(Some(count));
    pb.finish_body(bench, f);

    cls
}
