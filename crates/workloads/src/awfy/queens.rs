//! Queens: count the solutions of the 8-queens problem with backtracking.
//! Expected per-iteration result: 92.

use nimage_ir::{BinOp, ClassId, ProgramBuilder, TypeRef, UnOp};

use crate::harness::Harness;

pub(crate) fn install(pb: &mut ProgramBuilder, h: &Harness) -> ClassId {
    let cls = pb.add_class("awfy.queens.Queens", Some(h.benchmark_cls));

    // place(freeRows, freeMaxs, freeMins, row, n) -> solutions found
    let place = pb.declare_static(
        cls,
        "place",
        &[
            TypeRef::array_of(TypeRef::Bool), // freeRows[n]
            TypeRef::array_of(TypeRef::Bool), // freeMaxs[2n]
            TypeRef::array_of(TypeRef::Bool), // freeMins[2n]
            TypeRef::Int,                     // column c
            TypeRef::Int,                     // n
        ],
        Some(TypeRef::Int),
    );
    let mut f = pb.body(place);
    let free_rows = f.param(0);
    let free_maxs = f.param(1);
    let free_mins = f.param(2);
    let c = f.param(3);
    let n = f.param(4);
    let full = f.ge(c, n);
    f.if_then(full, |f| {
        let one = f.iconst(1);
        f.ret(Some(one));
    });
    let solutions = f.iconst(0);
    let from = f.iconst(0);
    f.for_range(from, n, |f, r| {
        let fr = f.array_get(free_rows, r);
        let max_idx = f.add(c, r);
        let fx = f.array_get(free_maxs, max_idx);
        let n1 = f.sub(c, r);
        let n2 = f.add(n1, n);
        let fm = f.array_get(free_mins, n2);
        let ok1 = f.bin(BinOp::And, fr, fx);
        let ok = f.bin(BinOp::And, ok1, fm);
        let free = f.un(UnOp::Not, ok);
        let usable = f.un(UnOp::Not, free); // == ok
        f.if_then(usable, |f| {
            let t = f.bconst(false);
            f.array_set(free_rows, r, t);
            f.array_set(free_maxs, max_idx, t);
            f.array_set(free_mins, n2, t);
            let one = f.iconst(1);
            let c1 = f.add(c, one);
            let sub = f
                .call_static(place, &[free_rows, free_maxs, free_mins, c1, n], true)
                .unwrap();
            let s = f.add(solutions, sub);
            f.assign(solutions, s);
            let tt = f.bconst(true);
            f.array_set(free_rows, r, tt);
            f.array_set(free_maxs, max_idx, tt);
            f.array_set(free_mins, n2, tt);
        });
    });
    f.ret(Some(solutions));
    pb.finish_body(place, f);

    let bench = pb.declare_virtual(cls, "benchmark", &[], Some(TypeRef::Int));
    let mut f = pb.body(bench);
    let n = f.iconst(8);
    let two_n = f.iconst(16);
    let free_rows = f.new_array(TypeRef::Bool, n);
    let free_maxs = f.new_array(TypeRef::Bool, two_n);
    let free_mins = f.new_array(TypeRef::Bool, two_n);
    let t = f.bconst(true);
    let from = f.iconst(0);
    f.for_range(from, n, |f, i| {
        f.array_set(free_rows, i, t);
    });
    let from = f.iconst(0);
    f.for_range(from, two_n, |f, i| {
        f.array_set(free_maxs, i, t);
        f.array_set(free_mins, i, t);
    });
    let zero = f.iconst(0);
    let count = f
        .call_static(place, &[free_rows, free_maxs, free_mins, zero, n], true)
        .unwrap();
    f.ret(Some(count));
    pb.finish_body(bench, f);

    cls
}
