//! Havlak: loop recognition on a synthetic control-flow graph, following
//! the structure of the Havlak–Tarjan algorithm the benchmark is named
//! after: DFS preorder numbering with subtree intervals, back-edge
//! classification via ancestor tests, and per-header loop-body collection
//! over union-find representatives. Returns `loops·1000 + bodySize`.

use nimage_ir::{BinOp, ClassId, ProgramBuilder, TypeRef, UnOp};

use crate::harness::Harness;

pub(crate) fn install(pb: &mut ProgramBuilder, h: &Harness) -> ClassId {
    // BasicBlock: out edges as index arrays.
    let bb = pb.add_class("awfy.havlak.BasicBlock", None);
    let f_succs = pb.add_instance_field(bb, "succs", TypeRef::array_of(TypeRef::Int));
    let f_nsucc = pb.add_instance_field(bb, "nsucc", TypeRef::Int);

    let cls = pb.add_class("awfy.havlak.Havlak", Some(h.benchmark_cls));
    let f_blocks = pb.add_instance_field(cls, "blocks", TypeRef::array_of(TypeRef::Object(bb)));
    let f_nblocks = pb.add_instance_field(cls, "nblocks", TypeRef::Int);
    // DFS state.
    let f_number = pb.add_instance_field(cls, "number", TypeRef::array_of(TypeRef::Int));
    let f_last = pb.add_instance_field(cls, "last", TypeRef::array_of(TypeRef::Int));
    let f_order = pb.add_instance_field(cls, "order", TypeRef::array_of(TypeRef::Int));
    // Union-find and predecessor CSR.
    let f_uf = pb.add_instance_field(cls, "uf", TypeRef::array_of(TypeRef::Int));
    let f_poff = pb.add_instance_field(cls, "poff", TypeRef::array_of(TypeRef::Int));
    let f_plist = pb.add_instance_field(cls, "plist", TypeRef::array_of(TypeRef::Int));

    // addBlock(this) -> Int
    let add_block = pb.declare_virtual(cls, "addBlock", &[], Some(TypeRef::Int));
    let mut f = pb.body(add_block);
    let this = f.this();
    let blocks = f.get_field(this, f_blocks);
    let n = f.get_field(this, f_nblocks);
    let b = f.new_object(bb);
    let cap = f.iconst(4);
    let succs = f.new_array(TypeRef::Int, cap);
    f.put_field(b, f_succs, succs);
    let zero = f.iconst(0);
    f.put_field(b, f_nsucc, zero);
    f.array_set(blocks, n, b);
    let one = f.iconst(1);
    let n1 = f.add(n, one);
    f.put_field(this, f_nblocks, n1);
    f.ret(Some(n));
    pb.finish_body(add_block, f);
    let add_block_sel = pb.intern_selector("addBlock", 0);

    // addEdge(this, from, to)
    let add_edge = pb.declare_virtual(cls, "addEdge", &[TypeRef::Int, TypeRef::Int], None);
    let mut f = pb.body(add_edge);
    let this = f.this();
    let from = f.param(1);
    let to = f.param(2);
    let blocks = f.get_field(this, f_blocks);
    let b = f.array_get(blocks, from);
    let succs = f.get_field(b, f_succs);
    let n = f.get_field(b, f_nsucc);
    f.array_set(succs, n, to);
    let one = f.iconst(1);
    let n1 = f.add(n, one);
    f.put_field(b, f_nsucc, n1);
    f.ret(None);
    pb.finish_body(add_edge, f);
    let add_edge_sel = pb.intern_selector("addEdge", 2);

    // dfsNumber(this): preorder `number`, subtree interval `last`, preorder
    // sequence `order` (iterative DFS with an explicit stack).
    let dfs = pb.declare_virtual(cls, "dfsNumber", &[], None);
    let mut f = pb.body(dfs);
    let this = f.this();
    let n = f.get_field(this, f_nblocks);
    let number = f.new_array(TypeRef::Int, n);
    let last = f.new_array(TypeRef::Int, n);
    let order = f.new_array(TypeRef::Int, n);
    let iter = f.new_array(TypeRef::Int, n);
    let stack = f.new_array(TypeRef::Int, n);
    f.put_field(this, f_number, number);
    f.put_field(this, f_last, last);
    f.put_field(this, f_order, order);
    let from = f.iconst(0);
    f.for_range(from, n, |f, i| {
        let minus1 = f.iconst(-1);
        f.array_set(number, i, minus1);
    });
    let blocks = f.get_field(this, f_blocks);
    let pre = f.iconst(0);
    let sp = f.iconst(0);
    // push root 0
    let zero = f.iconst(0);
    f.array_set(stack, sp, zero);
    let one = f.iconst(1);
    f.assign(sp, one);
    f.array_set(number, zero, pre);
    f.array_set(order, pre, zero);
    let pre1 = f.add(pre, one);
    f.assign(pre, pre1);
    f.while_loop(
        |f| {
            let zero = f.iconst(0);
            f.gt(sp, zero)
        },
        |f| {
            let one = f.iconst(1);
            let top = f.sub(sp, one);
            let v = f.array_get(stack, top);
            let b = f.array_get(blocks, v);
            let nsucc = f.get_field(b, f_nsucc);
            let ei = f.array_get(iter, v);
            let more = f.lt(ei, nsucc);
            f.if_then_else(
                more,
                |f| {
                    let succs = f.get_field(b, f_succs);
                    let w = f.array_get(succs, ei);
                    let ei1 = f.add(ei, one);
                    f.array_set(iter, v, ei1);
                    let nw = f.array_get(number, w);
                    let minus1 = f.iconst(-1);
                    let white = f.eq(nw, minus1);
                    f.if_then(white, |f| {
                        f.array_set(number, w, pre);
                        f.array_set(order, pre, w);
                        let p1 = f.add(pre, one);
                        f.assign(pre, p1);
                        f.array_set(stack, sp, w);
                        let sp1 = f.add(sp, one);
                        f.assign(sp, sp1);
                    });
                },
                |f| {
                    // finish v: everything discovered since number[v] is in
                    // v's subtree.
                    let p1 = f.sub(pre, one);
                    f.array_set(last, v, p1);
                    let sp1 = f.sub(sp, one);
                    f.assign(sp, sp1);
                },
            );
        },
    );
    f.ret(None);
    pb.finish_body(dfs, f);
    let dfs_sel = pb.intern_selector("dfsNumber", 0);

    // computePreds(this): CSR predecessor lists.
    let preds = pb.declare_virtual(cls, "computePreds", &[], None);
    let mut f = pb.body(preds);
    let this = f.this();
    let n = f.get_field(this, f_nblocks);
    let one = f.iconst(1);
    let np1 = f.add(n, one);
    let poff = f.new_array(TypeRef::Int, np1);
    f.put_field(this, f_poff, poff);
    let blocks = f.get_field(this, f_blocks);
    // Count in-degrees.
    let from = f.iconst(0);
    f.for_range(from, n, |f, u| {
        let b = f.array_get(blocks, u);
        let nsucc = f.get_field(b, f_nsucc);
        let succs = f.get_field(b, f_succs);
        let from2 = f.iconst(0);
        f.for_range(from2, nsucc, |f, e| {
            let w = f.array_get(succs, e);
            let one = f.iconst(1);
            let w1 = f.add(w, one);
            let c = f.array_get(poff, w1);
            let c1 = f.add(c, one);
            f.array_set(poff, w1, c1);
        });
    });
    // Prefix sums.
    let from = f.iconst(0);
    f.for_range(from, n, |f, i| {
        let one = f.iconst(1);
        let i1 = f.add(i, one);
        let a = f.array_get(poff, i);
        let b2 = f.array_get(poff, i1);
        let s = f.add(a, b2);
        f.array_set(poff, i1, s);
    });
    let total = f.array_get(poff, n);
    let plist = f.new_array(TypeRef::Int, total);
    f.put_field(this, f_plist, plist);
    // Fill (using a scratch cursor array).
    let cursor = f.new_array(TypeRef::Int, n);
    let from = f.iconst(0);
    f.for_range(from, n, |f, i| {
        let o = f.array_get(poff, i);
        f.array_set(cursor, i, o);
    });
    let from = f.iconst(0);
    f.for_range(from, n, |f, u| {
        let b = f.array_get(blocks, u);
        let nsucc = f.get_field(b, f_nsucc);
        let succs = f.get_field(b, f_succs);
        let from2 = f.iconst(0);
        f.for_range(from2, nsucc, |f, e| {
            let w = f.array_get(succs, e);
            let c = f.array_get(cursor, w);
            f.array_set(plist, c, u);
            let one = f.iconst(1);
            let c1 = f.add(c, one);
            f.array_set(cursor, w, c1);
        });
    });
    f.ret(None);
    pb.finish_body(preds, f);
    let preds_sel = pb.intern_selector("computePreds", 0);

    // ufFind(this, x) -> representative, with path compression.
    let uf_find = pb.declare_virtual(cls, "ufFind", &[TypeRef::Int], Some(TypeRef::Int));
    let mut f = pb.body(uf_find);
    let this = f.this();
    let x = f.copy(f.param(1));
    let uf = f.get_field(this, f_uf);
    // Find the root.
    let root = f.copy(x);
    f.while_loop(
        |f| {
            let p = f.array_get(uf, root);
            f.ne(p, root)
        },
        |f| {
            let p = f.array_get(uf, root);
            f.assign(root, p);
        },
    );
    // Compress the path.
    f.while_loop(
        |f| f.ne(x, root),
        |f| {
            let p = f.array_get(uf, x);
            f.array_set(uf, x, root);
            f.assign(x, p);
        },
    );
    f.ret(Some(root));
    pb.finish_body(uf_find, f);
    let uf_find_sel = pb.intern_selector("ufFind", 1);

    // findLoops(this) -> Int: Havlak-style loop construction. Processes
    // headers in reverse preorder; for each, collects the loop body by
    // walking predecessors of back-edge sources through union-find
    // representatives, then collapses the body into the header.
    let find_loops = pb.declare_virtual(cls, "findLoops", &[], Some(TypeRef::Int));
    let mut f = pb.body(find_loops);
    let this = f.this();
    f.call_virtual(cls, dfs_sel, &[this], false);
    f.call_virtual(cls, preds_sel, &[this], false);
    let n = f.get_field(this, f_nblocks);
    let uf = f.new_array(TypeRef::Int, n);
    f.put_field(this, f_uf, uf);
    let from = f.iconst(0);
    f.for_range(from, n, |f, i| {
        f.array_set(uf, i, i);
    });
    let number = f.get_field(this, f_number);
    let last = f.get_field(this, f_last);
    let order = f.get_field(this, f_order);
    let poff = f.get_field(this, f_poff);
    let plist = f.get_field(this, f_plist);

    let loops = f.iconst(0);
    let body_total = f.iconst(0);
    let in_body = f.new_array(TypeRef::Int, n); // header marker + 1
    let worklist = f.new_array(TypeRef::Int, n);

    // Reverse preorder walk.
    let one = f.iconst(1);
    let idx = f.sub(n, one);
    f.while_loop(
        |f| {
            let zero = f.iconst(0);
            f.ge(idx, zero)
        },
        |f| {
            let w = f.array_get(order, idx);
            let nw = f.array_get(number, w);
            let lw = f.array_get(last, w);
            // Collect back-edge sources: predecessors v of w with
            // number[w] <= number[v] <= last[w] (w is an ancestor of v).
            let sp = f.iconst(0);
            let one = f.iconst(1);
            let p0 = f.array_get(poff, w);
            let w1 = f.add(w, one);
            let p1 = f.array_get(poff, w1);
            let pi = f.copy(p0);
            f.while_loop(
                |f| f.lt(pi, p1),
                |f| {
                    let v = f.array_get(plist, pi);
                    let nv = f.array_get(number, v);
                    let ge = f.ge(nv, nw);
                    let le = f.le(nv, lw);
                    let self_loop = f.eq(v, w);
                    let not_self = f.un(UnOp::Not, self_loop);
                    let anc = f.bin(BinOp::And, ge, le);
                    let back = f.bin(BinOp::And, anc, not_self);
                    f.if_then(back, |f| {
                        let r = f.call_virtual(cls, uf_find_sel, &[this, v], true).unwrap();
                        let tag = f.array_get(in_body, r);
                        let w_tag = f.add(w, one);
                        let fresh = f.ne(tag, w_tag);
                        f.if_then(fresh, |f| {
                            f.array_set(in_body, r, w_tag);
                            f.array_set(worklist, sp, r);
                            let sp1 = f.add(sp, one);
                            f.assign(sp, sp1);
                        });
                    });
                    let pi1 = f.add(pi, one);
                    f.assign(pi, pi1);
                },
            );
            let zero = f.iconst(0);
            let has_loop = f.gt(sp, zero);
            f.if_then(has_loop, |f| {
                let one = f.iconst(1);
                let l1 = f.add(loops, one);
                f.assign(loops, l1);
                // Drain the worklist: pull predecessors into the body.
                f.while_loop(
                    |f| {
                        let zero = f.iconst(0);
                        f.gt(sp, zero)
                    },
                    |f| {
                        let one = f.iconst(1);
                        let top = f.sub(sp, one);
                        f.assign(sp, top);
                        let x = f.array_get(worklist, sp);
                        let b1 = f.add(body_total, one);
                        f.assign(body_total, b1);
                        // Predecessors of x.
                        let q0 = f.array_get(poff, x);
                        let x1 = f.add(x, one);
                        let q1 = f.array_get(poff, x1);
                        let qi = f.copy(q0);
                        f.while_loop(
                            |f| f.lt(qi, q1),
                            |f| {
                                let p = f.array_get(plist, qi);
                                let r = f.call_virtual(cls, uf_find_sel, &[this, p], true).unwrap();
                                let np = f.array_get(number, r);
                                let one = f.iconst(1);
                                let ge = f.ge(np, nw);
                                let le = f.le(np, lw);
                                let in_interval = f.bin(BinOp::And, ge, le);
                                let is_header = f.eq(r, w);
                                let not_header = f.un(UnOp::Not, is_header);
                                let eligible = f.bin(BinOp::And, in_interval, not_header);
                                f.if_then(eligible, |f| {
                                    let tag = f.array_get(in_body, r);
                                    let w_tag = f.add(w, one);
                                    let fresh = f.ne(tag, w_tag);
                                    f.if_then(fresh, |f| {
                                        f.array_set(in_body, r, w_tag);
                                        f.array_set(worklist, sp, r);
                                        let sp1 = f.add(sp, one);
                                        f.assign(sp, sp1);
                                    });
                                });
                                let qi1 = f.add(qi, one);
                                f.assign(qi, qi1);
                            },
                        );
                        // Collapse x into the header.
                        f.array_set(uf, x, w);
                    },
                );
            });
            let one = f.iconst(1);
            let i1 = f.sub(idx, one);
            f.assign(idx, i1);
        },
    );
    let k1000 = f.iconst(1000);
    let scaled = f.mul(loops, k1000);
    let out = f.add(scaled, body_total);
    f.ret(Some(out));
    pb.finish_body(find_loops, f);
    let find_loops_sel = pb.intern_selector("findLoops", 0);

    // benchmark(): build a spine of diamonds with inner back edges and an
    // outer nesting back edge every fifth segment, then recognize loops.
    let bench = pb.declare_virtual(cls, "benchmark", &[], Some(TypeRef::Int));
    let mut f = pb.body(bench);
    let this = f.this();
    let cap = f.iconst(500);
    let blocks = f.new_array(TypeRef::Object(bb), cap);
    f.put_field(this, f_blocks, blocks);
    let zero = f.iconst(0);
    f.put_field(this, f_nblocks, zero);

    let entry = f.call_virtual(cls, add_block_sel, &[this], true).unwrap();
    let prev = f.copy(entry);
    let outer_head = f.copy(entry);
    let from = f.iconst(0);
    let segs = f.iconst(30);
    f.for_range(from, segs, |f, s| {
        let head = f.call_virtual(cls, add_block_sel, &[this], true).unwrap();
        let left = f.call_virtual(cls, add_block_sel, &[this], true).unwrap();
        let right = f.call_virtual(cls, add_block_sel, &[this], true).unwrap();
        let join = f.call_virtual(cls, add_block_sel, &[this], true).unwrap();
        f.call_virtual(cls, add_edge_sel, &[this, prev, head], false);
        f.call_virtual(cls, add_edge_sel, &[this, head, left], false);
        f.call_virtual(cls, add_edge_sel, &[this, head, right], false);
        f.call_virtual(cls, add_edge_sel, &[this, left, join], false);
        f.call_virtual(cls, add_edge_sel, &[this, right, join], false);
        // Inner loop: join -> head.
        f.call_virtual(cls, add_edge_sel, &[this, join, head], false);
        // Every fifth segment closes an outer loop back to the last outer
        // header, creating genuine nesting.
        let five = f.iconst(5);
        let m = f.rem(s, five);
        let four = f.iconst(4);
        let close_outer = f.eq(m, four);
        f.if_then(close_outer, |f| {
            f.call_virtual(cls, add_edge_sel, &[this, join, outer_head], false);
            f.assign(outer_head, head);
        });
        f.assign(prev, join);
    });
    let out = f.call_virtual(cls, find_loops_sel, &[this], true).unwrap();
    f.ret(Some(out));
    pb.finish_body(bench, f);

    cls
}
