//! Bounce: simulate balls bouncing inside a box, counting wall bounces.

use nimage_ir::{BinOp, ClassId, ProgramBuilder, TypeRef, UnOp};

use crate::harness::Harness;

pub(crate) fn install(pb: &mut ProgramBuilder, h: &Harness) -> ClassId {
    let ball = pb.add_class("awfy.bounce.Ball", None);
    let f_x = pb.add_instance_field(ball, "x", TypeRef::Int);
    let f_y = pb.add_instance_field(ball, "y", TypeRef::Int);
    let f_xv = pb.add_instance_field(ball, "xVel", TypeRef::Int);
    let f_yv = pb.add_instance_field(ball, "yVel", TypeRef::Int);

    // Ball.init(random): position and velocity from the shared Random.
    let init = pb.declare_virtual(ball, "init", &[TypeRef::Object(h.random_cls)], None);
    let mut f = pb.body(init);
    let this = f.this();
    let rng = f.param(1);
    let v500 = f.iconst(500);
    let v300 = f.iconst(300);
    let r1 = f
        .call_virtual(h.random_cls, h.next_sel, &[rng], true)
        .unwrap();
    let x = f.rem(r1, v500);
    f.put_field(this, f_x, x);
    let r2 = f
        .call_virtual(h.random_cls, h.next_sel, &[rng], true)
        .unwrap();
    let y = f.rem(r2, v500);
    f.put_field(this, f_y, y);
    let r3 = f
        .call_virtual(h.random_cls, h.next_sel, &[rng], true)
        .unwrap();
    let v30 = f.iconst(30);
    let v15 = f.iconst(15);
    let xv0 = f.rem(r3, v30);
    let xv = f.sub(xv0, v15);
    f.put_field(this, f_xv, xv);
    let r4 = f
        .call_virtual(h.random_cls, h.next_sel, &[rng], true)
        .unwrap();
    let yv0 = f.rem(r4, v30);
    let yv = f.sub(yv0, v15);
    f.put_field(this, f_yv, yv);
    let _ = v300;
    f.ret(None);
    pb.finish_body(init, f);

    // Ball.bounce(): one step; returns 1 if the ball bounced off a wall.
    let bounce = pb.declare_virtual(ball, "bounce", &[], Some(TypeRef::Int));
    let mut f = pb.body(bounce);
    let this = f.this();
    let x_limit = f.iconst(500);
    let y_limit = f.iconst(500);
    let zero = f.iconst(0);
    let bounced = f.iconst(0);
    let x0 = f.get_field(this, f_x);
    let xv = f.get_field(this, f_xv);
    let x1 = f.add(x0, xv);
    f.put_field(this, f_x, x1);
    let y0 = f.get_field(this, f_y);
    let yv = f.get_field(this, f_yv);
    let y1 = f.add(y0, yv);
    f.put_field(this, f_y, y1);

    let over_x = f.gt(x1, x_limit);
    f.if_then(over_x, |f| {
        f.put_field(this, f_x, x_limit);
        let nxv = f.un(UnOp::Neg, xv);
        let axv = f.bin(BinOp::Lt, nxv, zero);
        let _ = axv;
        f.put_field(this, f_xv, nxv);
        let one = f.iconst(1);
        f.assign(bounced, one);
    });
    let under_x = f.lt(x1, zero);
    f.if_then(under_x, |f| {
        f.put_field(this, f_x, zero);
        let nxv = f.un(UnOp::Neg, xv);
        f.put_field(this, f_xv, nxv);
        let one = f.iconst(1);
        f.assign(bounced, one);
    });
    let over_y = f.gt(y1, y_limit);
    f.if_then(over_y, |f| {
        f.put_field(this, f_y, y_limit);
        let nyv = f.un(UnOp::Neg, yv);
        f.put_field(this, f_yv, nyv);
        let one = f.iconst(1);
        f.assign(bounced, one);
    });
    let under_y = f.lt(y1, zero);
    f.if_then(under_y, |f| {
        f.put_field(this, f_y, zero);
        let nyv = f.un(UnOp::Neg, yv);
        f.put_field(this, f_yv, nyv);
        let one = f.iconst(1);
        f.assign(bounced, one);
    });
    f.ret(Some(bounced));
    pb.finish_body(bounce, f);

    let cls = pb.add_class("awfy.bounce.Bounce", Some(h.benchmark_cls));
    let bench = pb.declare_virtual(cls, "benchmark", &[], Some(TypeRef::Int));
    let mut f = pb.body(bench);
    let rng = f.new_object(h.random_cls);
    let seed = f.iconst(74755);
    f.put_field(rng, h.random_seed, seed);
    let n_balls = f.iconst(100);
    let balls = f.new_array(TypeRef::Object(ball), n_balls);
    let init_sel = pb.intern_selector("init", 1);
    let from = f.iconst(0);
    f.for_range(from, n_balls, |f, i| {
        let b = f.new_object(ball);
        f.call_virtual(ball, init_sel, &[b, rng], false);
        f.array_set(balls, i, b);
    });
    let bounce_sel = pb.intern_selector("bounce", 0);
    let bounces = f.iconst(0);
    let from = f.iconst(0);
    let steps = f.iconst(50);
    f.for_range(from, steps, |f, _step| {
        let from2 = f.iconst(0);
        f.for_range(from2, n_balls, |f, i| {
            let b = f.array_get(balls, i);
            let hit = f.call_virtual(ball, bounce_sel, &[b], true).unwrap();
            let s = f.add(bounces, hit);
            f.assign(bounces, s);
        });
    });
    f.ret(Some(bounces));
    pb.finish_body(bench, f);

    cls
}
