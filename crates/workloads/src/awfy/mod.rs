//! The 14 "Are We Fast Yet?" benchmarks (Marr et al., DLS'16), re-authored
//! in nimage IR.
//!
//! Each benchmark contributes a class hierarchy under `awfy.<name>.*` whose
//! entry point is a `benchmark()` virtual method on a subclass of
//! `awfy.Benchmark`. The programs embed the synthetic runtime library (see
//! [`crate::runtime`]) so that, like real Native-Image binaries, most code
//! and most snapshot objects belong to the runtime and are never touched —
//! the structure the paper's ordering strategies exploit.
//!
//! Inner iteration counts are chosen for startup-scale runs (the paper
//! studies first execution, not steady state).

mod bounce;
mod cd;
mod deltablue;
mod havlak;
mod json;
mod list;
mod mandelbrot;
mod nbody;
mod permute;
mod queens;
mod richards;
mod sieve;
mod storage;
mod towers;

use nimage_ir::{ClassId, Program, ProgramBuilder};

use crate::harness::{install_harness, install_main, Harness};
use crate::runtime::{install_runtime, RuntimeScale};

/// One AWFY benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Awfy {
    Bounce,
    Cd,
    DeltaBlue,
    Havlak,
    Json,
    List,
    Mandelbrot,
    NBody,
    Permute,
    Queens,
    Richards,
    Sieve,
    Storage,
    Towers,
}

impl Awfy {
    /// All 14 benchmarks, in the order of the paper's figures.
    pub fn all() -> [Awfy; 14] {
        [
            Awfy::Bounce,
            Awfy::Cd,
            Awfy::DeltaBlue,
            Awfy::Havlak,
            Awfy::Json,
            Awfy::List,
            Awfy::Mandelbrot,
            Awfy::NBody,
            Awfy::Permute,
            Awfy::Queens,
            Awfy::Richards,
            Awfy::Sieve,
            Awfy::Storage,
            Awfy::Towers,
        ]
    }

    /// Display name as it appears in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Awfy::Bounce => "Bounce",
            Awfy::Cd => "CD",
            Awfy::DeltaBlue => "DeltaBlue",
            Awfy::Havlak => "Havlak",
            Awfy::Json => "Json",
            Awfy::List => "List",
            Awfy::Mandelbrot => "Mandelbrot",
            Awfy::NBody => "NBody",
            Awfy::Permute => "Permute",
            Awfy::Queens => "Queens",
            Awfy::Richards => "Richards",
            Awfy::Sieve => "Sieve",
            Awfy::Storage => "Storage",
            Awfy::Towers => "Towers",
        }
    }

    /// Inner iterations per run.
    fn iterations(&self) -> i64 {
        match self {
            Awfy::Mandelbrot | Awfy::Cd | Awfy::Havlak => 1,
            _ => 2,
        }
    }

    fn install(&self, pb: &mut ProgramBuilder, h: &Harness) -> ClassId {
        match self {
            Awfy::Bounce => bounce::install(pb, h),
            Awfy::Cd => cd::install(pb, h),
            Awfy::DeltaBlue => deltablue::install(pb, h),
            Awfy::Havlak => havlak::install(pb, h),
            Awfy::Json => json::install(pb, h),
            Awfy::List => list::install(pb, h),
            Awfy::Mandelbrot => mandelbrot::install(pb, h),
            Awfy::NBody => nbody::install(pb, h),
            Awfy::Permute => permute::install(pb, h),
            Awfy::Queens => queens::install(pb, h),
            Awfy::Richards => richards::install(pb, h),
            Awfy::Sieve => sieve::install(pb, h),
            Awfy::Storage => storage::install(pb, h),
            Awfy::Towers => towers::install(pb, h),
        }
    }

    /// Builds the full program (runtime library + harness + benchmark).
    ///
    /// Each benchmark reaches a slightly different slice of the runtime —
    /// in real Native-Image builds the points-to analysis pulls a
    /// different closure per application — so the runtime geometry is
    /// perturbed deterministically per benchmark name.
    pub fn program(&self) -> Program {
        let h = self
            .name()
            .bytes()
            .fold(0u64, |a, b| a.wrapping_mul(131).wrapping_add(u64::from(b)));
        let d = RuntimeScale::default();
        let scale = RuntimeScale {
            modules: d.modules - 10 + (h % 25) as usize,
            hot_methods: d.hot_methods - 1 + (h / 25 % 3) as usize,
            hot_pad: d.hot_pad - 10 + (h / 75 % 25) as usize,
            cold_methods: d.cold_methods - 1 + (h / 7 % 3) as usize,
            cold_pad: d.cold_pad - 15 + (h / 11 % 35) as usize,
            metas: d.metas - 4 + (h / 13 % 9) as usize,
            blob_len: d.blob_len - 80 + (h / 17 % 160) as usize,
        };
        self.program_at(&scale)
    }

    /// Builds the program with an explicit runtime scale (smaller scales
    /// keep unit tests fast).
    pub fn program_at(&self, scale: &RuntimeScale) -> Program {
        let mut pb = ProgramBuilder::new();
        let rt = install_runtime(&mut pb, scale);
        let h = install_harness(&mut pb);
        let cls = self.install(&mut pb, &h);
        install_main(&mut pb, &rt, &h, cls, self.iterations());
        pb.build().expect("benchmark program validates")
    }

    /// The expected per-iteration result of `benchmark()` (the AWFY-style
    /// verification value), where the benchmark has a closed-form one.
    pub fn expected_iteration_result(&self) -> Option<i64> {
        match self {
            Awfy::Sieve => Some(669),   // primes below 5000
            Awfy::Queens => Some(92),   // 8-queens solutions
            Awfy::Towers => Some(1023), // 2^10 - 1 moves
            Awfy::Permute => Some(720), // 6! leaf permutations
            _ => None,
        }
    }
}
