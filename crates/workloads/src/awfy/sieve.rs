//! Sieve: count the primes below 5000 with the sieve of Eratosthenes.
//! Expected per-iteration result: 669.

use nimage_ir::{ClassId, ProgramBuilder, TypeRef, UnOp};

use crate::harness::Harness;

pub(crate) fn install(pb: &mut ProgramBuilder, h: &Harness) -> ClassId {
    let cls = pb.add_class("awfy.sieve.Sieve", Some(h.benchmark_cls));

    let sieve = pb.declare_static(
        cls,
        "sieve",
        &[TypeRef::array_of(TypeRef::Bool), TypeRef::Int],
        Some(TypeRef::Int),
    );
    let mut f = pb.body(sieve);
    let flags = f.param(0);
    let size = f.param(1);
    let count = f.iconst(0);
    let two = f.iconst(2);
    let i = f.copy(two);
    f.while_loop(
        |f| f.le(i, size),
        |f| {
            let one = f.iconst(1);
            let idx = f.sub(i, one);
            let flag = f.array_get(flags, idx);
            let not_marked = f.un(UnOp::Not, flag);
            f.if_then(not_marked, |f| {
                let c1 = f.add(count, one);
                f.assign(count, c1);
                let k = f.add(i, i);
                f.while_loop(
                    |f| f.le(k, size),
                    |f| {
                        let kidx = f.sub(k, one);
                        let t = f.bconst(true);
                        f.array_set(flags, kidx, t);
                        let kn = f.add(k, i);
                        f.assign(k, kn);
                    },
                );
            });
            let inext = f.add(i, one);
            f.assign(i, inext);
        },
    );
    f.ret(Some(count));
    pb.finish_body(sieve, f);

    let bench = pb.declare_virtual(cls, "benchmark", &[], Some(TypeRef::Int));
    let mut f = pb.body(bench);
    let size = f.iconst(5000);
    let flags = f.new_array(TypeRef::Bool, size);
    let n = f.call_static(sieve, &[flags, size], true).unwrap();
    f.ret(Some(n));
    pb.finish_body(bench, f);

    cls
}
