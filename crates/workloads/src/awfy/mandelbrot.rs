//! Mandelbrot: escape-time iteration over a 64×64 grid, accumulating the
//! classic bit-packed checksum. Pure floating-point compute.

use nimage_ir::{BinOp, ClassId, ProgramBuilder, TypeRef, UnOp};

use crate::harness::Harness;

pub(crate) fn install(pb: &mut ProgramBuilder, h: &Harness) -> ClassId {
    let cls = pb.add_class("awfy.mandelbrot.Mandelbrot", Some(h.benchmark_cls));

    // mandelbrot(size) -> checksum
    let mandel = pb.declare_static(cls, "mandelbrot", &[TypeRef::Int], Some(TypeRef::Int));
    let mut f = pb.body(mandel);
    let size = f.param(0);
    let sum = f.iconst(0);
    let byte_acc = f.iconst(0);
    let bit_num = f.iconst(0);

    let size_d = f.un(UnOp::IntToDouble, size);
    let two = f.dconst(2.0);
    let one_i = f.iconst(1);

    let y = f.iconst(0);
    f.while_loop(
        |f| f.lt(y, size),
        |f| {
            let y_d = f.un(UnOp::IntToDouble, y);
            let t = f.mul(y_d, two);
            let t = f.div(t, size_d);
            let one = f.dconst(1.0);
            let ci = f.sub(t, one);

            let x = f.iconst(0);
            f.while_loop(
                |f| f.lt(x, size),
                |f| {
                    let x_d = f.un(UnOp::IntToDouble, x);
                    let t = f.mul(x_d, two);
                    let t = f.div(t, size_d);
                    let onep5 = f.dconst(1.5);
                    let cr = f.sub(t, onep5);

                    let zr = f.dconst(0.0);
                    let zi = f.dconst(0.0);
                    let escaped = f.bconst(false);
                    let i = f.iconst(0);
                    let max_iter = f.iconst(50);
                    f.while_loop(
                        |f| {
                            let more = f.lt(i, max_iter);
                            let not_escaped = f.un(UnOp::Not, escaped);
                            f.bin(BinOp::And, more, not_escaped)
                        },
                        |f| {
                            let zr2 = f.mul(zr, zr);
                            let zi2 = f.mul(zi, zi);
                            let mag = f.add(zr2, zi2);
                            let four = f.dconst(4.0);
                            let out = f.gt(mag, four);
                            f.if_then_else(
                                out,
                                |f| {
                                    let t = f.bconst(true);
                                    f.assign(escaped, t);
                                },
                                |f| {
                                    let zrzi = f.mul(zr, zi);
                                    let two_zrzi = f.mul(zrzi, two);
                                    let new_zi = f.add(two_zrzi, ci);
                                    let diff = f.sub(zr2, zi2);
                                    let new_zr = f.add(diff, cr);
                                    f.assign(zr, new_zr);
                                    f.assign(zi, new_zi);
                                    let one = f.iconst(1);
                                    let i1 = f.add(i, one);
                                    f.assign(i, i1);
                                },
                            );
                        },
                    );

                    // byte_acc = (byte_acc << 1) | (escaped ? 0 : 1)
                    let shifted = f.bin(BinOp::Shl, byte_acc, one_i);
                    let in_set = f.un(UnOp::Not, escaped);
                    let bit = f.local();
                    f.if_then_else(
                        in_set,
                        |f| {
                            let one = f.iconst(1);
                            f.assign(bit, one);
                        },
                        |f| {
                            let zero = f.iconst(0);
                            f.assign(bit, zero);
                        },
                    );
                    let acc = f.bin(BinOp::Or, shifted, bit);
                    f.assign(byte_acc, acc);
                    let b1 = f.add(bit_num, one_i);
                    f.assign(bit_num, b1);

                    let eight = f.iconst(8);
                    let flush = f.eq(bit_num, eight);
                    f.if_then(flush, |f| {
                        let x255 = f.iconst(255);
                        let masked = f.bin(BinOp::And, byte_acc, x255);
                        let s = f.bin(BinOp::Xor, sum, masked);
                        f.assign(sum, s);
                        let zero = f.iconst(0);
                        f.assign(byte_acc, zero);
                        f.assign(bit_num, zero);
                    });

                    let x1 = f.add(x, one_i);
                    f.assign(x, x1);
                },
            );
            let y1 = f.add(y, one_i);
            f.assign(y, y1);
        },
    );
    f.ret(Some(sum));
    pb.finish_body(mandel, f);

    let bench = pb.declare_virtual(cls, "benchmark", &[], Some(TypeRef::Int));
    let mut f = pb.body(bench);
    let size = f.iconst(64);
    let v = f.call_static(mandel, &[size], true).unwrap();
    f.ret(Some(v));
    pb.finish_body(bench, f);

    cls
}
