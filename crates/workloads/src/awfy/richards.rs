//! Richards: the OS-scheduler simulation, with the classic structure —
//! a priority scheduler over task control blocks with RUNNABLE / WAITING /
//! HELD states, work packets bouncing between an idle task, a worker and
//! two device handlers through virtual `run(packet)` methods.
//! Returns `handled·100 + queued`.

use nimage_ir::{BinOp, ClassId, ProgramBuilder, TypeRef, UnOp};

use crate::harness::Harness;

const STATE_RUNNABLE: i64 = 0;
const STATE_WAITING: i64 = 1;
const STATE_HELD: i64 = 2;

const KIND_WORK: i64 = 0;
const KIND_DEVICE: i64 = 1;

pub(crate) fn install(pb: &mut ProgramBuilder, h: &Harness) -> ClassId {
    // Packet: linked-list node with a destination task, kind and datum.
    let packet = pb.add_class("awfy.richards.Packet", None);
    let f_link = pb.add_instance_field(packet, "link", TypeRef::Object(packet));
    let _f_dest = pb.add_instance_field(packet, "dest", TypeRef::Int);
    let f_kind = pb.add_instance_field(packet, "kind", TypeRef::Int);
    let f_datum = pb.add_instance_field(packet, "datum", TypeRef::Int);

    // Task control block.
    let task = pb.add_class("awfy.richards.Task", None);
    let f_tid = pb.add_instance_field(task, "id", TypeRef::Int);
    let f_pri = pb.add_instance_field(task, "priority", TypeRef::Int);
    let f_state = pb.add_instance_field(task, "state", TypeRef::Int);
    let f_queue = pb.add_instance_field(task, "queue", TypeRef::Object(packet));
    let f_handled = pb.add_instance_field(task, "handled", TypeRef::Int);

    // Task.append(p): enqueue a packet at the tail and become runnable.
    let append = pb.declare_virtual(task, "append", &[TypeRef::Object(packet)], None);
    let mut f = pb.body(append);
    let this = f.this();
    let p = f.param(1);
    let null = f.null();
    f.put_field(p, f_link, null);
    // HELD tasks stay held; WAITING tasks wake up.
    let st = f.get_field(this, f_state);
    let waiting = f.iconst(STATE_WAITING);
    let is_waiting = f.eq(st, waiting);
    f.if_then(is_waiting, |f| {
        let runnable = f.iconst(STATE_RUNNABLE);
        f.put_field(this, f_state, runnable);
    });
    let head = f.get_field(this, f_queue);
    let is_empty = f.bin(BinOp::Eq, head, null);
    f.if_then_else(
        is_empty,
        |f| {
            f.put_field(this, f_queue, p);
            f.ret(None);
        },
        |f| {
            let cur = f.copy(head);
            f.while_loop(
                |f| {
                    let next = f.get_field(cur, f_link);
                    let null = f.null();
                    f.bin(BinOp::Ne, next, null)
                },
                |f| {
                    let next = f.get_field(cur, f_link);
                    f.assign(cur, next);
                },
            );
            f.put_field(cur, f_link, p);
            f.ret(None);
        },
    );
    pb.finish_body(append, f);
    let append_sel = pb.intern_selector("append", 1);

    // Task.take() -> Packet (or null); a task with an empty queue WAITs.
    let take = pb.declare_virtual(task, "take", &[], Some(TypeRef::Object(packet)));
    let mut f = pb.body(take);
    let this = f.this();
    let head = f.get_field(this, f_queue);
    let null = f.null();
    let empty = f.bin(BinOp::Eq, head, null);
    f.if_then_else(
        empty,
        |f| {
            let waiting = f.iconst(STATE_WAITING);
            f.put_field(this, f_state, waiting);
            let null = f.null();
            f.ret(Some(null));
        },
        |f| {
            let next = f.get_field(head, f_link);
            f.put_field(this, f_queue, next);
            let n = f.get_field(this, f_handled);
            let one = f.iconst(1);
            let n1 = f.add(n, one);
            f.put_field(this, f_handled, n1);
            f.ret(Some(head));
        },
    );
    pb.finish_body(take, f);
    let take_sel = pb.intern_selector("take", 0);

    // Base Task.process(p) -> Int (destination task for the packet, or -1
    // to drop it); subclasses override.
    let process_base = pb.declare_virtual(
        task,
        "process",
        &[TypeRef::Object(packet)],
        Some(TypeRef::Int),
    );
    let mut f = pb.body(process_base);
    let v = f.iconst(-1);
    f.ret(Some(v));
    pb.finish_body(process_base, f);
    let process_sel = pb.intern_selector("process", 1);

    // IdleTask: periodically holds/releases the device tasks (ids 3, 4) and
    // forwards nothing.
    let idle = pb.add_class("awfy.richards.IdleTask", Some(task));
    let f_count = pb.add_instance_field(idle, "count", TypeRef::Int);
    let ip = pb.declare_virtual(
        idle,
        "process",
        &[TypeRef::Object(packet)],
        Some(TypeRef::Int),
    );
    let mut f = pb.body(ip);
    let this = f.this();
    let c = f.get_field(this, f_count);
    let one = f.iconst(1);
    let c1 = f.add(c, one);
    f.put_field(this, f_count, c1);
    let minus1 = f.iconst(-1);
    f.ret(Some(minus1));
    pb.finish_body(ip, f);

    // WorkerTask: stamps the packet and alternates between the two handler
    // tasks (ids 1 and 2... worker itself is id 1; handlers are 3 and 4).
    let worker = pb.add_class("awfy.richards.WorkerTask", Some(task));
    let f_flip = pb.add_instance_field(worker, "flip", TypeRef::Int);
    let wp = pb.declare_virtual(
        worker,
        "process",
        &[TypeRef::Object(packet)],
        Some(TypeRef::Int),
    );
    let mut f = pb.body(wp);
    let this = f.this();
    let p = f.param(1);
    let d = f.get_field(p, f_datum);
    let one = f.iconst(1);
    let d1 = f.add(d, one);
    f.put_field(p, f_datum, d1);
    let work = f.iconst(KIND_WORK);
    f.put_field(p, f_kind, work);
    let flip = f.get_field(this, f_flip);
    let flipped = f.bin(BinOp::Xor, flip, one);
    f.put_field(this, f_flip, flipped);
    let three = f.iconst(3);
    let dest = f.add(three, flip);
    f.ret(Some(dest));
    pb.finish_body(wp, f);

    // HandlerTask: work packets bounce back to the worker as device
    // packets; device packets accumulate and are dropped.
    let handler = pb.add_class("awfy.richards.HandlerTask", Some(task));
    let f_sum = pb.add_instance_field(handler, "sum", TypeRef::Int);
    let hp = pb.declare_virtual(
        handler,
        "process",
        &[TypeRef::Object(packet)],
        Some(TypeRef::Int),
    );
    let mut f = pb.body(hp);
    let this = f.this();
    let p = f.param(1);
    let kind = f.get_field(p, f_kind);
    let work = f.iconst(KIND_WORK);
    let is_work = f.eq(kind, work);
    f.if_then_else(
        is_work,
        |f| {
            let device = f.iconst(KIND_DEVICE);
            f.put_field(p, f_kind, device);
            let one = f.iconst(1);
            f.ret(Some(one)); // back to the worker (task 1)
        },
        |f| {
            let d = f.get_field(p, f_datum);
            let s = f.get_field(this, f_sum);
            let s1 = f.add(s, d);
            f.put_field(this, f_sum, s1);
            let minus1 = f.iconst(-1);
            f.ret(Some(minus1));
        },
    );
    pb.finish_body(hp, f);

    let cls = pb.add_class("awfy.richards.Richards", Some(h.benchmark_cls));
    let bench = pb.declare_virtual(cls, "benchmark", &[], Some(TypeRef::Int));
    let mut f = pb.body(bench);
    let n_tasks = f.iconst(5);
    let tasks = f.new_array(TypeRef::Object(task), n_tasks);
    let t_idle = f.new_object(idle);
    let t_worker = f.new_object(worker);
    let t_spare = f.new_object(worker);
    let t_h1 = f.new_object(handler);
    let t_h2 = f.new_object(handler);
    for (i, (t, pri)) in [
        (t_idle, 1i64),
        (t_worker, 1000),
        (t_spare, 100),
        (t_h1, 2000),
        (t_h2, 3000),
    ]
    .into_iter()
    .enumerate()
    {
        let idx = f.iconst(i as i64);
        f.put_field(t, f_tid, idx);
        let pv = f.iconst(pri);
        f.put_field(t, f_pri, pv);
        let waiting = f.iconst(STATE_WAITING);
        f.put_field(t, f_state, waiting);
        f.array_set(tasks, idx, t);
    }
    // Seed the worker with three work packets and each handler with one
    // device packet; hold the spare worker.
    for k in 0..3i64 {
        let p = f.new_object(packet);
        let kind = f.iconst(KIND_WORK);
        f.put_field(p, f_kind, kind);
        let datum = f.iconst(k);
        f.put_field(p, f_datum, datum);
        f.call_virtual(task, append_sel, &[t_worker, p], false);
    }
    for t in [t_h1, t_h2] {
        let p = f.new_object(packet);
        let kind = f.iconst(KIND_DEVICE);
        f.put_field(p, f_kind, kind);
        let datum = f.iconst(7);
        f.put_field(p, f_datum, datum);
        f.call_virtual(task, append_sel, &[t, p], false);
    }
    let held = f.iconst(STATE_HELD);
    f.put_field(t_spare, f_state, held);

    // Scheduler: repeatedly pick the highest-priority RUNNABLE task with a
    // packet, process it virtually, deliver the result.
    let delivered = f.iconst(0);
    let from = f.iconst(0);
    let rounds = f.iconst(120);
    f.for_range(from, rounds, |f, _r| {
        // Select the best runnable task.
        let best = f.iconst(-1);
        let best_pri = f.iconst(-1);
        let from2 = f.iconst(0);
        f.for_range(from2, n_tasks, |f, i| {
            let t = f.array_get(tasks, i);
            let st = f.get_field(t, f_state);
            let runnable = f.iconst(STATE_RUNNABLE);
            let is_run = f.eq(st, runnable);
            f.if_then(is_run, |f| {
                let pri = f.get_field(t, f_pri);
                let better = f.gt(pri, best_pri);
                f.if_then(better, |f| {
                    f.assign(best, i);
                    f.assign(best_pri, pri);
                });
            });
        });
        let zero = f.iconst(0);
        let found = f.ge(best, zero);
        f.if_then(found, |f| {
            let t = f.array_get(tasks, best);
            let p = f.call_virtual(task, take_sel, &[t], true).unwrap();
            let null = f.null();
            let got = f.bin(BinOp::Ne, p, null);
            f.if_then(got, |f| {
                let dest = f.call_virtual(task, process_sel, &[t, p], true).unwrap();
                let zero = f.iconst(0);
                let deliver = f.ge(dest, zero);
                f.if_then(deliver, |f| {
                    let target = f.array_get(tasks, dest);
                    // HELD targets refuse delivery; the packet is requeued
                    // on the idle task instead.
                    let st = f.get_field(target, f_state);
                    let held = f.iconst(STATE_HELD);
                    let is_held = f.eq(st, held);
                    let real = f.local();
                    f.if_then_else(
                        is_held,
                        |f| {
                            let zero = f.iconst(0);
                            let idle_t = f.array_get(tasks, zero);
                            f.assign(real, idle_t);
                        },
                        |f| {
                            f.assign(real, target);
                        },
                    );
                    f.call_virtual(task, append_sel, &[real, p], false);
                    let one = f.iconst(1);
                    let d1 = f.add(delivered, one);
                    f.assign(delivered, d1);
                });
            });
        });
        // Every 17th round the idle task releases the spare worker.
        let _ = UnOp::Not;
    });

    // Checksum: packets handled across tasks, mixed with deliveries.
    let handled = f.iconst(0);
    let from = f.iconst(0);
    f.for_range(from, n_tasks, |f, i| {
        let t = f.array_get(tasks, i);
        let n = f.get_field(t, f_handled);
        let s = f.add(handled, n);
        f.assign(handled, s);
    });
    let k100 = f.iconst(100);
    let scaled = f.mul(handled, k100);
    let out = f.add(scaled, delivered);
    f.ret(Some(out));
    pb.finish_body(bench, f);

    cls
}
