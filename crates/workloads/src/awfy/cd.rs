//! CD: the collision-detector benchmark — aircraft on deterministic
//! trigonometric trajectories, frame-by-frame proximity detection over all
//! pairs. Double-precision heavy with per-frame allocation.

use nimage_ir::{BinOp, ClassId, Intrinsic, ProgramBuilder, TypeRef, UnOp};

use crate::harness::Harness;

pub(crate) fn install(pb: &mut ProgramBuilder, h: &Harness) -> ClassId {
    let aircraft = pb.add_class("awfy.cd.Aircraft", None);
    let f_id = pb.add_instance_field(aircraft, "id", TypeRef::Int);
    let f_x = pb.add_instance_field(aircraft, "x", TypeRef::Double);
    let f_y = pb.add_instance_field(aircraft, "y", TypeRef::Double);
    let f_z = pb.add_instance_field(aircraft, "z", TypeRef::Double);

    let cls = pb.add_class("awfy.cd.CollisionDetector", Some(h.benchmark_cls));

    // updatePosition(craft, t): deterministic trajectory.
    let update = pb.declare_static(
        cls,
        "updatePosition",
        &[TypeRef::Object(aircraft), TypeRef::Double],
        None,
    );
    let mut f = pb.body(update);
    let craft = f.param(0);
    let t = f.param(1);
    let id = f.get_field(craft, f_id);
    let id_d = f.un(UnOp::IntToDouble, id);
    let tenth = f.dconst(0.1);
    let sep = f.mul(id_d, tenth);
    let phase = f.add(t, sep);
    let sx = f.intrinsic(Intrinsic::Sin, &[phase], true).unwrap();
    let radius = f.dconst(50.0);
    let x = f.mul(sx, radius);
    f.put_field(craft, f_x, x);
    let cy = f.intrinsic(Intrinsic::Cos, &[phase], true).unwrap();
    let y = f.mul(cy, radius);
    f.put_field(craft, f_y, y);
    let unit = f.dconst(1.0);
    let z = f.mul(id_d, unit);
    f.put_field(craft, f_z, z);
    f.ret(None);
    pb.finish_body(update, f);

    // distance2(a, b) -> Double
    let dist2 = pb.declare_static(
        cls,
        "distance2",
        &[TypeRef::Object(aircraft), TypeRef::Object(aircraft)],
        Some(TypeRef::Double),
    );
    let mut f = pb.body(dist2);
    let a = f.param(0);
    let b = f.param(1);
    let ax = f.get_field(a, f_x);
    let bx = f.get_field(b, f_x);
    let dx = f.sub(ax, bx);
    let ay = f.get_field(a, f_y);
    let by = f.get_field(b, f_y);
    let dy = f.sub(ay, by);
    let az = f.get_field(a, f_z);
    let bz = f.get_field(b, f_z);
    let dz = f.sub(az, bz);
    let dx2 = f.mul(dx, dx);
    let dy2 = f.mul(dy, dy);
    let dz2 = f.mul(dz, dz);
    let s = f.add(dx2, dy2);
    let d2 = f.add(s, dz2);
    f.ret(Some(d2));
    pb.finish_body(dist2, f);

    // voxelOf(craft) -> Int: the benchmark's reduceCollisionSet phase —
    // bucket aircraft into coarse voxels so only same-voxel pairs need the
    // exact distance check.
    let voxel_of = pb.declare_static(
        cls,
        "voxelOf",
        &[TypeRef::Object(aircraft)],
        Some(TypeRef::Int),
    );
    let mut f = pb.body(voxel_of);
    let craft = f.param(0);
    let x = f.get_field(craft, f_x);
    let y = f.get_field(craft, f_y);
    let size = f.dconst(30.0); // voxel edge = proximity radius
    let half = f.dconst(128.0);
    let xs = f.add(x, half);
    let ys = f.add(y, half);
    let vx0 = f.div(xs, size);
    let vy0 = f.div(ys, size);
    let vx = f.un(UnOp::DoubleToInt, vx0);
    let vy = f.un(UnOp::DoubleToInt, vy0);
    let k32 = f.iconst(32);
    let row = f.mul(vy, k32);
    let v = f.add(row, vx);
    // Clamp into the table.
    let zero = f.iconst(0);
    let cap = f.iconst(1024);
    let lo = f.lt(v, zero);
    let out = f.local();
    f.assign(out, v);
    f.if_then(lo, |f| {
        let zero = f.iconst(0);
        f.assign(out, zero);
    });
    let hi = f.ge(v, cap);
    f.if_then(hi, |f| {
        let one = f.iconst(1);
        let last = f.sub(cap, one);
        f.assign(out, last);
    });
    f.ret(Some(out));
    pb.finish_body(voxel_of, f);

    // detectCollisions(fleet, voxels, bucket) -> Int: two phases — assign
    // voxels, then exact pairwise checks only within matching voxels
    // (neighbouring voxels are covered because the voxel edge equals the
    // proximity radius and positions move little per frame).
    let detect = pb.declare_static(
        cls,
        "detectCollisions",
        &[
            TypeRef::array_of(TypeRef::Object(aircraft)),
            TypeRef::array_of(TypeRef::Int),
        ],
        Some(TypeRef::Int),
    );
    let mut f = pb.body(detect);
    let fleet = f.param(0);
    let voxels = f.param(1);
    let n = f.array_len(fleet);
    // Phase 1: bucket.
    let from = f.iconst(0);
    f.for_range(from, n, |f, i| {
        let a = f.array_get(fleet, i);
        let v = f.call_static(voxel_of, &[a], true).unwrap();
        f.array_set(voxels, i, v);
    });
    // Phase 2: exact checks for same- or adjacent-voxel pairs.
    let hits = f.iconst(0);
    let from = f.iconst(0);
    f.for_range(from, n, |f, i| {
        let a = f.array_get(fleet, i);
        let va = f.array_get(voxels, i);
        let one = f.iconst(1);
        let j = f.add(i, one);
        f.while_loop(
            |f| f.lt(j, n),
            |f| {
                let vb = f.array_get(voxels, j);
                let dv0 = f.sub(va, vb);
                let zero = f.iconst(0);
                let neg = f.lt(dv0, zero);
                let dv = f.local();
                f.assign(dv, dv0);
                f.if_then(neg, |f| {
                    let m = f.un(UnOp::Neg, dv0);
                    f.assign(dv, m);
                });
                // Same voxel, horizontal neighbour (±1) or vertical
                // neighbour (±32).
                let one_i = f.iconst(1);
                let k32 = f.iconst(32);
                let k31 = f.iconst(31);
                let k33 = f.iconst(33);
                let near1 = f.le(dv, one_i);
                let near2 = f.eq(dv, k32);
                let near3 = f.eq(dv, k31);
                let near4 = f.eq(dv, k33);
                let n12 = f.bin(BinOp::Or, near1, near2);
                let n34 = f.bin(BinOp::Or, near3, near4);
                let near = f.bin(BinOp::Or, n12, n34);
                f.if_then(near, |f| {
                    let b = f.array_get(fleet, j);
                    let d2 = f.call_static(dist2, &[a, b], true).unwrap();
                    let radius2 = f.dconst(900.0); // 30 units
                    let close = f.lt(d2, radius2);
                    f.if_then(close, |f| {
                        let one = f.iconst(1);
                        let h1 = f.add(hits, one);
                        f.assign(hits, h1);
                    });
                });
                let one = f.iconst(1);
                let j1 = f.add(j, one);
                f.assign(j, j1);
            },
        );
    });
    f.ret(Some(hits));
    pb.finish_body(detect, f);

    let bench = pb.declare_virtual(cls, "benchmark", &[], Some(TypeRef::Int));
    let mut f = pb.body(bench);
    let n_craft = f.iconst(20);
    let fleet = f.new_array(TypeRef::Object(aircraft), n_craft);
    let from = f.iconst(0);
    f.for_range(from, n_craft, |f, i| {
        let a = f.new_object(aircraft);
        f.put_field(a, f_id, i);
        f.array_set(fleet, i, a);
    });
    let voxels = f.new_array(TypeRef::Int, n_craft);
    let collisions = f.iconst(0);
    let from = f.iconst(0);
    let frames = f.iconst(25);
    f.for_range(from, frames, |f, frame| {
        let frame_d = f.un(UnOp::IntToDouble, frame);
        let tenth = f.dconst(0.1);
        let t = f.mul(frame_d, tenth);
        let from2 = f.iconst(0);
        f.for_range(from2, n_craft, |f, i| {
            let a = f.array_get(fleet, i);
            f.call_static(update, &[a, t], false);
        });
        let hits = f.call_static(detect, &[fleet, voxels], true).unwrap();
        let c1 = f.add(collisions, hits);
        f.assign(collisions, c1);
    });
    let mask = f.iconst(0x7fff_ffff);
    let out = f.bin(BinOp::And, collisions, mask);
    f.ret(Some(out));
    pb.finish_body(bench, f);

    cls
}
