//! # nimage-workloads
//!
//! The evaluation workloads of the paper (Sec. 7.1), re-authored in nimage
//! IR:
//!
//! * the 14 **"Are We Fast Yet?"** benchmarks ([`Awfy`]) — the FaaS-model
//!   workloads;
//! * three **microservice** helloworld services ([`Microservice`]) on
//!   synthetic `micronaut`/`quarkus`/`spring`-like frameworks — the
//!   multi-threaded, time-to-first-response workloads.
//!
//! Every program embeds the same synthetic [`runtime`] library so that,
//! like real Native-Image binaries, most compiled code and most heap
//! snapshot objects belong to runtime internals: reachable (the analysis
//! is conservative) but mostly untouched at run time, with the startup
//! path executing small pieces scattered across all of it. That structure
//! is precisely what makes profile-guided reordering profitable.
//!
//! ```no_run
//! use nimage_workloads::Awfy;
//!
//! let program = Awfy::Bounce.program();
//! assert!(program.methods().len() > 100);
//! ```

#![warn(missing_docs)]

mod awfy;
pub mod harness;
mod micro;
pub mod runtime;

pub use awfy::Awfy;
pub use micro::Microservice;
pub use runtime::RuntimeScale;
