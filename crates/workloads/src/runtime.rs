//! The synthetic "Native Image runtime internals".
//!
//! Real Native-Image binaries are dominated by runtime/JDK code and
//! metadata: the paper observes that the heap snapshot "does not only
//! contain the user-allocated objects but also many String literals, Class
//! instances, metadata byte arrays, and maps that dominate the size", that
//! benchmarks touch only ~4 % of snapshot objects, and that startup
//! executes small pieces of *many* modules (Fig. 6 shows faults scattered
//! across the whole `.text`).
//!
//! [`install_runtime`] reproduces that shape: `modules` modules, each with
//!
//! * a class initializer allocating per-module metadata (Meta instances, a
//!   metadata blob array, interned name strings) and registering the module
//!   in a shared registry whose contents depend on initializer order (all
//!   module classes share one parallel-initialization group);
//! * one small **hot init method** executed by `rt.Startup.boot` — these
//!   are the scattered green cells of Fig. 6a;
//! * several large **cold methods**, reachable behind a runtime-false flag,
//!   full of unique string/double constants that drag objects into the
//!   snapshot.

use nimage_ir::{ClassId, FieldId, MethodId, ProgramBuilder, TypeRef};

/// Knobs controlling the synthetic runtime size.
#[derive(Debug, Clone)]
pub struct RuntimeScale {
    /// Number of runtime modules.
    pub modules: usize,
    /// Hot startup-init methods per module (all executed by `boot`).
    pub hot_methods: usize,
    /// Unrolled padding per hot method (instructions ≈ 9 bytes each).
    pub hot_pad: usize,
    /// Cold (reachable, never executed) methods per module.
    pub cold_methods: usize,
    /// Unrolled padding per cold method.
    pub cold_pad: usize,
    /// Metadata objects per module.
    pub metas: usize,
    /// Ints per metadata blob array (cold snapshot payload).
    pub blob_len: usize,
}

impl Default for RuntimeScale {
    fn default() -> Self {
        RuntimeScale {
            modules: 120,
            hot_methods: 8,
            hot_pad: 80,
            cold_methods: 8,
            cold_pad: 130,
            metas: 48,
            blob_len: 800,
        }
    }
}

impl RuntimeScale {
    /// A smaller runtime for fast unit tests.
    pub fn small() -> Self {
        RuntimeScale {
            modules: 16,
            hot_methods: 3,
            hot_pad: 30,
            cold_methods: 3,
            cold_pad: 60,
            metas: 8,
            blob_len: 64,
        }
    }
}

/// Handles into the installed runtime.
#[derive(Debug, Clone)]
pub struct RuntimeLib {
    /// `rt.Startup.boot()`: the hot startup path — call this first in
    /// `main` (and in every service thread entry).
    pub boot: MethodId,
    /// The registry class.
    pub registry: ClassId,
    /// `rt.Registry.COUNT`: number of registered modules (int).
    pub count_field: FieldId,
}

/// Installs the synthetic runtime into a program under construction.
pub fn install_runtime(pb: &mut ProgramBuilder, scale: &RuntimeScale) -> RuntimeLib {
    let meta_cls = pb.add_class("rt.Meta", None);
    let f_meta_id = pb.add_instance_field(meta_cls, "id", TypeRef::Int);
    let f_meta_flags = pb.add_instance_field(meta_cls, "flags", TypeRef::Int);
    let f_meta_name = pb.add_instance_field(meta_cls, "name", TypeRef::Str);

    let module_cls = pb.add_class("rt.Module", None);
    let f_mod_id = pb.add_instance_field(module_cls, "id", TypeRef::Int);
    let f_mod_metas = pb.add_instance_field(
        module_cls,
        "metas",
        TypeRef::array_of(TypeRef::Object(meta_cls)),
    );
    // A few modules store their metadata in an alternate field (think:
    // a different container flavour). Whether the module occupying a given
    // registry slot uses `metas` or `altMetas` depends on the shuffled
    // initialization order, so the first discovery *path* of such a
    // module's metadata differs across builds even though slot positions
    // line up — the heap-path strategy's multiple-paths weakness.
    let f_mod_alt = pb.add_instance_field(
        module_cls,
        "altMetas",
        TypeRef::array_of(TypeRef::Object(meta_cls)),
    );
    let f_mod_blob = pb.add_instance_field(module_cls, "blob", TypeRef::array_of(TypeRef::Int));

    let registry = pb.add_class("rt.Registry", None);
    let f_modules = pb.add_static_field(
        registry,
        "MODULES",
        TypeRef::array_of(TypeRef::Object(module_cls)),
    );
    let count_field = pb.add_static_field(registry, "COUNT", TypeRef::Int);
    // A shared cache of metadata objects, *also* reachable through their
    // owning modules. Its slot assignment follows initializer order, so the
    // first discovery path of a cached object differs across builds — the
    // heap-path strategy's documented weakness ("the same object may be
    // reachable from multiple paths", Sec. 5.3).
    let f_cache = pb.add_static_field(
        registry,
        "CACHE",
        TypeRef::array_of(TypeRef::Object(meta_cls)),
    );
    let f_ccount = pb.add_static_field(registry, "CCOUNT", TypeRef::Int);
    let f_cold = pb.add_static_field(registry, "COLD", TypeRef::Bool);
    {
        let cl = pb.declare_clinit(registry);
        let mut f = pb.body(cl);
        let n = f.iconst(scale.modules as i64 + 1);
        let arr = f.new_array(TypeRef::Object(module_cls), n);
        f.put_static(f_modules, arr);
        let cache = f.new_array(TypeRef::Object(meta_cls), n);
        f.put_static(f_cache, cache);
        let zero = f.iconst(0);
        f.put_static(count_field, zero);
        f.put_static(f_ccount, zero);
        f.ret(None);
        pb.finish_body(cl, f);
    }

    // All module initializers run in one parallel-initialization group →
    // registry slot assignment is build-order dependent (Sec. 2's
    // non-determinism).
    let group = 7_000;
    pb.set_init_group(registry, group - 1);

    // Shared helper methods, small enough to be inlined everywhere. Their
    // method-entry events are what makes *method ordering* ambiguous
    // (Sec. 4's a/b/c example): the profile names the helper, but the
    // optimizing build must guess which CU copy the event belongs to.
    let helpers_cls = pb.add_class("rt.internal.Helpers", None);
    let n_helpers = scale.modules.max(8);
    let mut helpers: Vec<MethodId> = vec![];
    for k in 0..n_helpers {
        let hm = pb.declare_static(
            helpers_cls,
            &format!("h{k:03}"),
            &[TypeRef::Int],
            Some(TypeRef::Int),
        );
        let mut f = pb.body(hm);
        let x = f.param(0);
        let c = f.iconst(k as i64 + 3);
        let y = f.mul(x, c);
        let one = f.iconst(1);
        let z = f.add(y, one);
        f.ret(Some(z));
        pb.finish_body(hm, f);
        helpers.push(hm);
    }

    let mut hot_inits: Vec<MethodId> = vec![];
    for m in 0..scale.modules {
        let cls = pb.add_class(&format!("rt.m{m:03}.Mod"), None);
        pb.set_init_group(cls, group);

        // <clinit>: allocate the module metadata and register it.
        let cl = pb.declare_clinit(cls);
        let mut f = pb.body(cl);
        let module = f.new_object(module_cls);
        let n_metas = f.iconst(scale.metas as i64);
        let metas = f.new_array(TypeRef::Object(meta_cls), n_metas);
        let from = f.iconst(0);
        // The registration slot this module will get (read before the
        // registration below bumps it) — build-order dependent.
        let reg_slot = f.get_static(count_field);
        f.for_range(from, n_metas, |f, i| {
            let meta = f.new_object(meta_cls);
            f.put_field(meta, f_meta_id, i);
            // Most modules carry pure class data (stable across builds),
            // but some modules embed their registration order into all of
            // their metadata — hash seeds, registration indices — content a
            // structural hash cannot match across builds.
            let flags = if m % 15 == 0 {
                let v = f.mul(reg_slot, i);
                let k = f.iconst(7919);
                f.add(v, k)
            } else {
                let tag = f.iconst(m as i64);
                f.mul(tag, i)
            };
            f.put_field(meta, f_meta_flags, flags);
            let name = f.sconst(&format!("rt.m{m:03}.meta"));
            f.put_field(meta, f_meta_name, name);
            f.array_set(metas, i, meta);
        });
        if m % 30 == 0 {
            f.put_field(module, f_mod_alt, metas);
        } else {
            f.put_field(module, f_mod_metas, metas);
        }
        let blob_len = f.iconst(scale.blob_len as i64);
        let blob = f.new_array(TypeRef::Int, blob_len);
        let from = f.iconst(0);
        f.for_range(from, blob_len, |f, i| {
            let v = f.mul(i, i);
            f.array_set(blob, i, v);
        });
        f.put_field(module, f_mod_blob, blob);
        // The module's own id is stable across builds (it is part of the
        // module's content, like a class name)…
        let stable_id = f.iconst(m as i64);
        f.put_field(module, f_mod_id, stable_id);
        // …but the registry *slot* depends on initializer order, so the
        // encounter order of module subtrees diverges across builds.
        let count = f.get_static(count_field);
        let arr = f.get_static(f_modules);
        f.array_set(arr, count, module);
        let one = f.iconst(1);
        let next = f.add(count, one);
        f.put_static(count_field, next);
        // Publish meta[1] into the shared cache; the cache slot follows
        // the (shuffled) initialization order.
        let m1 = f.array_get(metas, one);
        let cache = f.get_static(f_cache);
        let ci = f.get_static(f_ccount);
        f.array_set(cache, ci, m1);
        let ci1 = f.add(ci, one);
        f.put_static(f_ccount, ci1);
        f.ret(None);
        pb.finish_body(cl, f);

        // Hot init methods: the startup path of this module. Each reads a
        // few of the module's *small* metadata objects (the big blob stays
        // cold, like metadata byte arrays that are present but not parsed
        // at startup), then does some register-class/wire-encoding work.
        for j in 0..scale.hot_methods {
            let hot = pb.declare_static(
                cls,
                &format!("init{j}"),
                &[TypeRef::Int],
                Some(TypeRef::Int),
            );
            let mut f = pb.body(hot);
            let slot = f.param(0);
            // Consult the shared cache first (this also makes the cache the
            // first-discovered root during the image build's code scan).
            let cache = f.get_static(f_cache);
            let cached = f.array_get(cache, slot);
            let cflags = f.get_field(cached, f_meta_flags);
            let arr = f.get_static(f_modules);
            let module = f.array_get(arr, slot);
            // The occupant of this slot may keep its metadata in either
            // field, depending on which module the (shuffled) registration
            // order placed here.
            let metas = f.local();
            let primary = f.get_field(module, f_mod_metas);
            f.assign(metas, primary);
            let null = f.null();
            let missing = f.bin(nimage_ir::BinOp::Eq, primary, null);
            f.if_then(missing, |f| {
                let alt = f.get_field(module, f_mod_alt);
                f.assign(metas, alt);
            });
            let idx = f.iconst(j as i64);
            let meta = f.array_get(metas, idx);
            let flags = f.get_field(meta, f_meta_flags);
            let id = f.get_field(meta, f_meta_id);
            let mut v = f.add(flags, id);
            v = f.add(v, cflags);
            let helper = helpers[(m * scale.hot_methods + j) % n_helpers];
            v = f.call_static(helper, &[v], true).unwrap();
            for _ in 0..scale.hot_pad {
                let one = f.iconst(1);
                v = f.add(v, one);
            }
            f.ret(Some(v));
            pb.finish_body(hot, f);
            hot_inits.push(hot);
        }

        // Cold methods: big bodies with unique constants.
        for k in 0..scale.cold_methods {
            let cold = pb.declare_static(cls, &format!("cold{k}"), &[], Some(TypeRef::Int));
            let mut f = pb.body(cold);
            let s = f.sconst(&format!("rt.m{m:03}.cold{k}.message"));
            let len = f.str_len(s);
            let d = f.dconst(m as f64 * 1000.0 + k as f64 + 0.5);
            let di = f.un(nimage_ir::UnOp::DoubleToInt, d);
            let mut v = f.add(len, di);
            for h in 0..4 {
                let helper = helpers[(m * scale.cold_methods + k + h * 17) % n_helpers];
                v = f.call_static(helper, &[v], true).unwrap();
            }
            for _ in 0..scale.cold_pad {
                let one = f.iconst(1);
                v = f.add(v, one);
            }
            f.ret(Some(v));
            pb.finish_body(cold, f);
        }
    }

    // rt.Startup.boot(): runs every module's hot init; keeps cold methods
    // reachable behind a runtime-false flag.
    let startup_cls = pb.add_class("rt.Startup", None);
    let boot = pb.declare_static(startup_cls, "boot", &[], Some(TypeRef::Int));
    let mut f = pb.body(boot);
    let acc = f.iconst(0);
    let take_cold = f.get_static(f_cold);
    let mut cold_refs: Vec<MethodId> = vec![];
    for m in 0..scale.modules {
        let cls = pb
            .program()
            .class_by_name(&format!("rt.m{m:03}.Mod"))
            .expect("module exists");
        for &mid in &pb.program().class(cls).methods.clone() {
            if pb.program().method(mid).name.starts_with("cold") {
                cold_refs.push(mid);
            }
        }
    }
    f.if_then(take_cold, |f| {
        for &m in &cold_refs {
            let v = f.call_static(m, &[], true).unwrap();
            let s = f.add(acc, v);
            f.assign(acc, s);
        }
    });
    for (k, &hot) in hot_inits.iter().enumerate() {
        let slot = f.iconst((k / scale.hot_methods) as i64);
        let v = f.call_static(hot, &[slot], true).unwrap();
        let s = f.add(acc, v);
        f.assign(acc, s);
    }
    f.ret(Some(acc));
    pb.finish_body(boot, f);

    pb.add_resource("META-INF/native-image/config.json", 4 * 1024);
    pb.add_resource("META-INF/services/rt.Module", 512);

    RuntimeLib {
        boot,
        registry,
        count_field,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimage_analysis::{analyze, AnalysisConfig};

    #[test]
    fn runtime_installs_and_validates() {
        let mut pb = ProgramBuilder::new();
        let rt = install_runtime(&mut pb, &RuntimeScale::small());
        // Attach a main that boots the runtime so the program validates
        // with an entry point.
        let c = pb.add_class("t.Main", None);
        let main = pb.declare_static(c, "main", &[], Some(TypeRef::Int));
        let mut f = pb.body(main);
        let v = f.call_static(rt.boot, &[], true).unwrap();
        f.ret(Some(v));
        pb.finish_body(main, f);
        pb.set_entry(main);
        let p = pb.build().expect("runtime program validates");
        let scale = RuntimeScale::small();
        assert!(p.classes().len() > scale.modules);

        let reach = analyze(&p, &AnalysisConfig::default());
        // Cold methods are reachable...
        let cold_reachable = reach
            .methods
            .iter()
            .filter(|&&m| p.method(m).name.starts_with("cold"))
            .count();
        assert_eq!(cold_reachable, scale.modules * scale.cold_methods);
        let hot_reachable = reach
            .methods
            .iter()
            .filter(|&&m| p.method(m).name.starts_with("init"))
            .count();
        assert_eq!(hot_reachable, scale.modules * scale.hot_methods);
        // ...and every module initializer runs at build time.
        assert!(reach.build_time_inits.len() >= scale.modules);
    }
}
