//! Correctness tests for every workload: each benchmark builds, validates,
//! runs deterministically, and — where a closed-form result exists —
//! computes the right answer.

use nimage_analysis::{analyze, AnalysisConfig};
use nimage_compiler::{compile, InlineConfig, InstrumentConfig};
use nimage_heap::{snapshot, HeapBuildConfig};
use nimage_image::{BinaryImage, ImageOptions};
use nimage_ir::Program;
use nimage_vm::{ExitKind, RtValue, StopWhen, Vm, VmConfig};
use nimage_workloads::{Awfy, Microservice, RuntimeScale};

fn run(program: &Program, stop: StopWhen) -> nimage_vm::RunReport {
    let reach = analyze(program, &AnalysisConfig::default());
    let cp = compile(
        program,
        reach,
        &InlineConfig::default(),
        InstrumentConfig::NONE,
        None,
    );
    let snap = snapshot(program, &cp, &HeapBuildConfig::default()).unwrap();
    let img = BinaryImage::build(&cp, &snap, None, None, ImageOptions::default());
    Vm::new(program, &cp, &snap, &img, VmConfig::default())
        .run(stop)
        .unwrap()
}

#[test]
fn every_awfy_benchmark_builds_and_runs() {
    let scale = RuntimeScale::small();
    for b in Awfy::all() {
        let p = b.program_at(&scale);
        let r = run(&p, StopWhen::Exit);
        assert_eq!(r.exit, ExitKind::Exited, "{}", b.name());
        let v = match r.entry_return {
            Some(RtValue::Int(v)) => v,
            other => panic!("{}: expected int result, got {other:?}", b.name()),
        };
        assert_ne!(v, 0, "{}: checksum must be nonzero", b.name());
    }
}

#[test]
fn closed_form_results_are_correct() {
    let scale = RuntimeScale::small();
    for b in Awfy::all() {
        let Some(expected) = b.expected_iteration_result() else {
            continue;
        };
        let p = b.program_at(&scale);
        let r = run(&p, StopWhen::Exit);
        // main sums `iterations` runs of benchmark().
        let iters = 2;
        assert_eq!(
            r.entry_return,
            Some(RtValue::Int(expected * iters)),
            "{}",
            b.name()
        );
    }
}

#[test]
fn awfy_runs_are_deterministic() {
    let scale = RuntimeScale::small();
    for b in [Awfy::Bounce, Awfy::Richards, Awfy::Json, Awfy::Storage] {
        let p = b.program_at(&scale);
        let a = run(&p, StopWhen::Exit);
        let bb = run(&p, StopWhen::Exit);
        assert_eq!(a.entry_return, bb.entry_return, "{}", b.name());
        assert_eq!(a.ops, bb.ops, "{}", b.name());
        assert_eq!(a.faults, bb.faults, "{}", b.name());
    }
}

#[test]
fn awfy_touches_only_a_small_fraction_of_snapshot_objects() {
    // Sec. 7.2: "the evaluated benchmarks access a small percentage of the
    // objects stored in the .svm_heap section (on average 4% on AWFY)".
    let p = Awfy::Sieve.program(); // default (large) runtime scale
    let reach = analyze(&p, &AnalysisConfig::default());
    let cp = compile(
        &p,
        reach,
        &InlineConfig::default(),
        InstrumentConfig {
            trace_heap: true,
            ..InstrumentConfig::NONE
        },
        None,
    );
    let snap = snapshot(&p, &cp, &HeapBuildConfig::default()).unwrap();
    let img = BinaryImage::build(&cp, &snap, None, None, ImageOptions::default());
    let r = Vm::new(&p, &cp, &snap, &img, VmConfig::default())
        .run(StopWhen::Exit)
        .unwrap();
    let trace = r.trace.unwrap();
    let mut touched = std::collections::HashSet::new();
    for t in &trace.threads {
        for rec in t {
            if let nimage_profiler::TraceRecord::Path { obj_ids, .. } = rec {
                for &id in obj_ids {
                    if id != 0 {
                        touched.insert(id);
                    }
                }
            }
        }
    }
    let frac = touched.len() as f64 / snap.entries().len() as f64;
    assert!(
        frac < 0.25,
        "benchmarks should touch a small fraction of the snapshot, got {frac:.3}"
    );
    assert!(frac > 0.0);
}

#[test]
fn every_microservice_responds() {
    let scale = RuntimeScale::small();
    for m in Microservice::all() {
        let p = m.program_at(&scale);
        let r = run(&p, StopWhen::FirstResponse);
        assert_eq!(r.exit, ExitKind::FirstResponse, "{}", m.name());
        let rp = r.first_response.expect("response point");
        assert!(rp.ops > 0, "{}", m.name());
        assert!(rp.faults.total() > 0, "{}", m.name());
    }
}

#[test]
fn microservices_are_multi_threaded() {
    let scale = RuntimeScale::small();
    let p = Microservice::Spring.program_at(&scale);
    let reach = analyze(&p, &AnalysisConfig::default());
    let cp = compile(
        &p,
        reach,
        &InlineConfig::default(),
        InstrumentConfig::FULL,
        None,
    );
    let snap = snapshot(&p, &cp, &HeapBuildConfig::default()).unwrap();
    let img = BinaryImage::build(&cp, &snap, None, None, ImageOptions::default());
    let r = Vm::new(&p, &cp, &snap, &img, VmConfig::default())
        .run(StopWhen::FirstResponse)
        .unwrap();
    let trace = r.trace.unwrap();
    assert!(
        trace.threads.len() >= 3,
        "main + handler threads, got {}",
        trace.threads.len()
    );
}

#[test]
fn frameworks_differ_in_size() {
    let scale = RuntimeScale::small();
    let spring = Microservice::Spring.program_at(&scale);
    let quarkus = Microservice::Quarkus.program_at(&scale);
    assert!(spring.methods().len() > quarkus.methods().len());
    assert!(spring.classes().len() > quarkus.classes().len());
}

#[test]
fn default_scale_programs_are_substantial() {
    let p = Awfy::Bounce.program();
    assert!(
        p.methods().len() > 900,
        "default-scale program has {} methods",
        p.methods().len()
    );
    assert!(p.total_code_size() > 500_000);
}

/// Rust mirror of the Bounce benchmark: same AWFY `Random`, same physics —
/// locks the IR implementation's exact semantics.
#[test]
fn bounce_matches_rust_mirror() {
    struct Rng(i64);
    impl Rng {
        fn next(&mut self) -> i64 {
            self.0 = (self.0 * 1309 + 13849) & 65535;
            self.0
        }
    }
    let mut rng = Rng(74755);
    let mut balls: Vec<[i64; 4]> = (0..100)
        .map(|_| {
            let x = rng.next() % 500;
            let y = rng.next() % 500;
            let xv = rng.next() % 30 - 15;
            let yv = rng.next() % 30 - 15;
            [x, y, xv, yv]
        })
        .collect();
    let mut bounces = 0i64;
    for _ in 0..50 {
        for b in balls.iter_mut() {
            let mut hit = 0;
            b[0] += b[2];
            b[1] += b[3];
            if b[0] > 500 {
                b[0] = 500;
                b[2] = -b[2];
                hit = 1;
            }
            if b[0] < 0 {
                b[0] = 0;
                b[2] = -b[2];
                hit = 1;
            }
            if b[1] > 500 {
                b[1] = 500;
                b[3] = -b[3];
                hit = 1;
            }
            if b[1] < 0 {
                b[1] = 0;
                b[3] = -b[3];
                hit = 1;
            }
            bounces += hit;
        }
    }
    let expected = bounces * 2; // two inner iterations

    let p = Awfy::Bounce.program_at(&RuntimeScale::small());
    let r = run(&p, StopWhen::Exit);
    assert_eq!(r.entry_return, Some(RtValue::Int(expected)));
}

/// Rust mirror of the Mandelbrot checksum.
#[test]
fn mandelbrot_matches_rust_mirror() {
    fn mandelbrot(size: i64) -> i64 {
        let (mut sum, mut byte_acc, mut bit_num) = (0i64, 0i64, 0i64);
        for y in 0..size {
            let ci = 2.0 * y as f64 / size as f64 - 1.0;
            for x in 0..size {
                let cr = 2.0 * x as f64 / size as f64 - 1.5;
                let (mut zr, mut zi) = (0.0f64, 0.0f64);
                let mut escaped = false;
                let mut i = 0;
                while i < 50 && !escaped {
                    let zr2 = zr * zr;
                    let zi2 = zi * zi;
                    if zr2 + zi2 > 4.0 {
                        escaped = true;
                    } else {
                        let nzi = 2.0 * zr * zi + ci;
                        zr = zr2 - zi2 + cr;
                        zi = nzi;
                        i += 1;
                    }
                }
                byte_acc = (byte_acc << 1) | i64::from(!escaped);
                bit_num += 1;
                if bit_num == 8 {
                    sum ^= byte_acc & 255;
                    byte_acc = 0;
                    bit_num = 0;
                }
            }
        }
        sum
    }
    let expected = mandelbrot(64); // one inner iteration
    let p = Awfy::Mandelbrot.program_at(&RuntimeScale::small());
    let r = run(&p, StopWhen::Exit);
    assert_eq!(r.entry_return, Some(RtValue::Int(expected)));
}

/// Havlak must recognize exactly the constructed loops: 30 inner diamond
/// loops plus 6 outer nesting loops.
#[test]
fn havlak_recognizes_constructed_loops() {
    let p = Awfy::Havlak.program_at(&RuntimeScale::small());
    let r = run(&p, StopWhen::Exit);
    let v = match r.entry_return {
        Some(RtValue::Int(v)) => v,
        other => panic!("unexpected {other:?}"),
    };
    // checksum = loops * 1000 + collapsed body size (1 inner iteration).
    // One loop per header (Havlak semantics — multiple back edges into the
    // same header merge): 30 diamond headers + the entry header that the
    // outer nesting edges all reach through collapsed inner loops.
    let loops = v / 1000;
    assert_eq!(loops, 31, "30 inner headers + entry header, got {loops}");
    assert!(v % 1000 > 0, "loop bodies must be non-empty");
}

/// The List benchmark is the Takeuchi-style `tail` recursion; its result is
/// the length of the returned list, mirrored here.
#[test]
fn list_matches_rust_mirror() {
    #[derive(Clone)]
    struct L(Vec<i64>); // list as vec of values, head first
    fn make(n: i64) -> L {
        L((1..=n).rev().collect())
    }
    fn shorter(x: &L, y: &L) -> bool {
        x.0.len() < y.0.len()
    }
    fn tail(x: L, y: L, z: L) -> L {
        if shorter(&y, &x) {
            let a = tail(L(x.0[1..].to_vec()), y.clone(), z.clone());
            let b = tail(L(y.0[1..].to_vec()), z.clone(), x.clone());
            let c = tail(L(z.0[1..].to_vec()), x, y);
            tail(a, b, c)
        } else {
            z
        }
    }
    let result = tail(make(15), make(10), make(6));
    let expected = result.0.len() as i64 * 2; // two inner iterations
    let p = Awfy::List.program_at(&RuntimeScale::small());
    let r = run(&p, StopWhen::Exit);
    assert_eq!(r.entry_return, Some(RtValue::Int(expected)));
}
