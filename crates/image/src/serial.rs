//! A small serialized container format for laid-out images.
//!
//! Real Native Image emits ELF; our simulated binary serializes the layout
//! metadata (section table, CU placement, object placement) into a compact
//! tagged format so that images can be written to disk, inspected by tools
//! and read back structurally. Payload bytes are not materialized — the VM
//! executes from the in-memory [`crate::BinaryImage`]; the file format
//! exists for tooling and for exercising a realistic binary container.

use std::error::Error;
use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::layout::BinaryImage;

const MAGIC: &[u8; 4] = b"NIMG";
const VERSION: u16 = 1;

/// Structural view of a serialized image file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageFile {
    /// Format version.
    pub version: u16,
    /// Page size used by the layout.
    pub page_size: u64,
    /// `.text` offset and size.
    pub text: (u64, u64),
    /// `.svm_heap` offset and size.
    pub svm_heap: (u64, u64),
    /// `(cu id, absolute offset)` in layout order.
    pub cus: Vec<(u32, u64)>,
    /// `(object id, absolute offset)` in layout order.
    pub objects: Vec<(u32, u64)>,
}

/// Errors decoding an image file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageFileError {
    /// The magic number did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// The byte stream ended prematurely.
    Truncated,
}

impl fmt::Display for ImageFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageFileError::BadMagic => write!(f, "not a nimage file (bad magic)"),
            ImageFileError::BadVersion(v) => write!(f, "unsupported image version {v}"),
            ImageFileError::Truncated => write!(f, "truncated image file"),
        }
    }
}

impl Error for ImageFileError {}

/// Serializes the layout of `image` into the container format.
pub fn write_image_file(image: &BinaryImage) -> Bytes {
    let mut b = BytesMut::new();
    b.put_slice(MAGIC);
    b.put_u16(VERSION);
    b.put_u64(image.options.page_size);
    b.put_u64(image.text.offset);
    b.put_u64(image.text.size);
    b.put_u64(image.svm_heap.offset);
    b.put_u64(image.svm_heap.size);
    b.put_u32(image.cu_order.len() as u32);
    for &cu in &image.cu_order {
        b.put_u32(cu.0);
        b.put_u64(image.cu_offset(cu));
    }
    b.put_u32(image.object_order.len() as u32);
    for &obj in &image.object_order {
        b.put_u32(obj.0);
        b.put_u64(image.object_offset(obj).expect("ordered object has offset"));
    }
    b.freeze()
}

/// Decodes the container format.
///
/// # Errors
/// Returns [`ImageFileError`] on malformed input.
pub fn read_image_file(mut data: &[u8]) -> Result<ImageFile, ImageFileError> {
    fn need(data: &[u8], n: usize) -> Result<(), ImageFileError> {
        if data.len() < n {
            Err(ImageFileError::Truncated)
        } else {
            Ok(())
        }
    }
    need(data, 6)?;
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(ImageFileError::BadMagic);
    }
    let version = data.get_u16();
    if version != VERSION {
        return Err(ImageFileError::BadVersion(version));
    }
    need(data, 8 * 5 + 4)?;
    let page_size = data.get_u64();
    let text = (data.get_u64(), data.get_u64());
    let svm_heap = (data.get_u64(), data.get_u64());
    let n_cus = data.get_u32() as usize;
    need(data, n_cus * 12 + 4)?;
    let mut cus = Vec::with_capacity(n_cus);
    for _ in 0..n_cus {
        cus.push((data.get_u32(), data.get_u64()));
    }
    let n_objs = data.get_u32() as usize;
    need(data, n_objs * 12)?;
    let mut objects = Vec::with_capacity(n_objs);
    for _ in 0..n_objs {
        objects.push((data.get_u32(), data.get_u64()));
    }
    Ok(ImageFile {
        version,
        page_size,
        text,
        svm_heap,
        cus,
        objects,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::ImageOptions;
    use nimage_analysis::{analyze, AnalysisConfig};
    use nimage_compiler::{compile, InlineConfig, InstrumentConfig};
    use nimage_heap::{snapshot, HeapBuildConfig};
    use nimage_ir::{ProgramBuilder, TypeRef};

    fn tiny_image() -> BinaryImage {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("t.Main", None);
        let fld = pb.add_static_field(c, "S", TypeRef::Str);
        let cl = pb.declare_clinit(c);
        let mut f = pb.body(cl);
        let s = f.sconst("x");
        f.put_static(fld, s);
        f.ret(None);
        pb.finish_body(cl, f);
        let main = pb.declare_static(c, "main", &[], Some(TypeRef::Int));
        let mut f = pb.body(main);
        let s = f.get_static(fld);
        let v = f.str_len(s);
        f.ret(Some(v));
        pb.finish_body(main, f);
        pb.set_entry(main);
        let p = pb.build().unwrap();
        let reach = analyze(&p, &AnalysisConfig::default());
        let cp = compile(
            &p,
            reach,
            &InlineConfig::default(),
            InstrumentConfig::NONE,
            None,
        );
        let snap = snapshot(&p, &cp, &HeapBuildConfig::default()).unwrap();
        BinaryImage::build(&cp, &snap, None, None, ImageOptions::default())
    }

    #[test]
    fn roundtrip_preserves_layout() {
        let img = tiny_image();
        let bytes = write_image_file(&img);
        let file = read_image_file(&bytes).unwrap();
        assert_eq!(file.version, VERSION);
        assert_eq!(file.page_size, img.options.page_size);
        assert_eq!(file.text, (img.text.offset, img.text.size));
        assert_eq!(file.svm_heap, (img.svm_heap.offset, img.svm_heap.size));
        assert_eq!(file.cus.len(), img.cu_order.len());
        assert_eq!(file.objects.len(), img.object_order.len());
        for (i, &(id, off)) in file.cus.iter().enumerate() {
            assert_eq!(id, img.cu_order[i].0);
            assert_eq!(off, img.cu_offset(img.cu_order[i]));
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert_eq!(
            read_image_file(b"ELF\x7f123456789"),
            Err(ImageFileError::BadMagic)
        );
    }

    #[test]
    fn truncated_input_is_rejected() {
        let img = tiny_image();
        let bytes = write_image_file(&img);
        for cut in [0, 3, 7, bytes.len() - 1] {
            assert_eq!(
                read_image_file(&bytes[..cut]),
                Err(ImageFileError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bad_version_is_rejected() {
        let img = tiny_image();
        let mut bytes = write_image_file(&img).to_vec();
        bytes[4] = 0xff;
        assert!(matches!(
            read_image_file(&bytes),
            Err(ImageFileError::BadVersion(_))
        ));
    }
}
