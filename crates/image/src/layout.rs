//! Section layout of the binary image.

use nimage_compiler::{CompiledProgram, CuId};
use nimage_heap::{HeapSnapshot, ObjId};

/// Sentinel for "object not in the image" in the dense offset table.
const NO_OFFSET: u64 = u64::MAX;

/// Layout options.
#[derive(Debug, Clone)]
pub struct ImageOptions {
    /// Page size in bytes (the paper evaluates with 4 KiB pages).
    pub page_size: u64,
    /// Alignment of compilation units within `.text`.
    pub cu_align: u64,
    /// Alignment of objects within `.svm_heap`.
    pub obj_align: u64,
    /// Size of the native-code tail at the end of `.text` (statically
    /// linked native methods, not reordered — Fig. 6 / Appendix A).
    pub native_tail: u64,
}

impl Default for ImageOptions {
    fn default() -> Self {
        ImageOptions {
            page_size: 4096,
            cu_align: 16,
            obj_align: 8,
            native_tail: 768 * 1024,
        }
    }
}

/// Which section an offset belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SectionKind {
    /// Compiled code (`.text`), including the native tail.
    Text,
    /// The heap snapshot (`.svm_heap`).
    SvmHeap,
}

/// A contiguous byte range of the image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionSpan {
    /// Absolute start offset.
    pub offset: u64,
    /// Size in bytes.
    pub size: u64,
}

impl SectionSpan {
    /// End offset (exclusive).
    pub fn end(&self) -> u64 {
        self.offset + self.size
    }

    /// Whether the span contains `offset`.
    pub fn contains(&self, offset: u64) -> bool {
        offset >= self.offset && offset < self.end()
    }
}

/// A laid-out binary image.
#[derive(Debug, Clone)]
pub struct BinaryImage {
    /// Layout options used.
    pub options: ImageOptions,
    /// The `.text` span (offset 0).
    pub text: SectionSpan,
    /// The `.svm_heap` span (page-aligned after `.text`).
    pub svm_heap: SectionSpan,
    /// CU layout order.
    pub cu_order: Vec<CuId>,
    /// Absolute offset of each CU, indexed densely by [`CuId::index`].
    /// The interpreter touches code on every call, so the lookup must be
    /// an array read, not a map walk.
    cu_offsets: Vec<u64>,
    /// Object layout order (snapshot entries).
    pub object_order: Vec<ObjId>,
    /// Absolute offset of each object, indexed densely by
    /// [`ObjId::index`]; [`NO_OFFSET`] marks objects absent from the
    /// image (e.g. PEA-folded). Heap accesses hit this on every step.
    object_offsets: Vec<u64>,
    /// Total image size in bytes.
    pub total_size: u64,
    /// Absolute offset where the native tail begins (page-aligned).
    pub native_start: u64,
    /// Optional permutation of the native tail's pages (the paper's stated
    /// future work: reordering statically linked native methods). Entry `i`
    /// is the physical page (within the tail) where logical page `i` now
    /// lives.
    native_page_order: Option<Vec<u32>>,
}

fn align_up(v: u64, a: u64) -> u64 {
    debug_assert!(a.is_power_of_two());
    (v + a - 1) & !(a - 1)
}

impl BinaryImage {
    /// Lays out an image.
    ///
    /// `cu_order` / `object_order` default to the build's own orders (the
    /// paper's baseline: alphabetical CUs, objects in CU order). Orders must
    /// be permutations of the full CU / snapshot-entry sets.
    ///
    /// # Panics
    /// Panics if a provided order is not a permutation of the build's CUs or
    /// snapshot objects.
    pub fn build(
        compiled: &CompiledProgram,
        snapshot: &HeapSnapshot,
        cu_order: Option<Vec<CuId>>,
        object_order: Option<Vec<ObjId>>,
        options: ImageOptions,
    ) -> BinaryImage {
        let cu_order = cu_order.unwrap_or_else(|| compiled.cus.iter().map(|c| c.id).collect());
        assert_eq!(
            cu_order.len(),
            compiled.cus.len(),
            "cu order must cover every CU exactly once"
        );
        {
            let mut seen = vec![false; compiled.cus.len()];
            for &c in &cu_order {
                assert!(!seen[c.index()], "duplicate CU {c} in order");
                seen[c.index()] = true;
            }
        }
        let object_order =
            object_order.unwrap_or_else(|| snapshot.entries().iter().map(|e| e.obj).collect());
        assert_eq!(
            object_order.len(),
            snapshot.entries().len(),
            "object order must cover every snapshot entry exactly once"
        );

        let mut cu_offsets = vec![NO_OFFSET; compiled.cus.len()];
        let mut cursor = 0u64;
        for &cu in &cu_order {
            cursor = align_up(cursor, options.cu_align);
            cu_offsets[cu.index()] = cursor;
            cursor += u64::from(compiled.cu(cu).size);
        }
        // The native tail starts page-aligned: the linker places the
        // statically linked libraries in their own page-aligned region.
        let native_start = align_up(cursor, options.page_size);
        let text = SectionSpan {
            offset: 0,
            size: native_start + options.native_tail,
        };

        let heap_start = align_up(text.end(), options.page_size);
        let n_objs = object_order
            .iter()
            .map(|o| o.index() + 1)
            .max()
            .unwrap_or(0);
        let mut object_offsets = vec![NO_OFFSET; n_objs];
        let mut cursor = heap_start;
        for &obj in &object_order {
            cursor = align_up(cursor, options.obj_align);
            object_offsets[obj.index()] = cursor;
            let entry = snapshot
                .entry(obj)
                .unwrap_or_else(|| panic!("object {obj} not in snapshot"));
            cursor += u64::from(entry.size);
        }
        let svm_heap = SectionSpan {
            offset: heap_start,
            size: cursor - heap_start,
        };

        // Construction-site mirror of the invariants nimage-verify's layout
        // checker enforces on the finished image.
        debug_assert_eq!(native_start % options.page_size, 0);
        debug_assert_eq!(svm_heap.offset % options.page_size, 0);
        debug_assert!(svm_heap.offset >= text.end(), "sections overlap");
        debug_assert!(
            cu_order.iter().all(
                |&cu| cu_offsets[cu.index()] + u64::from(compiled.cu(cu).size) <= native_start
            ),
            "a CU placement reaches into the native tail"
        );
        debug_assert!(
            object_order
                .iter()
                .all(|&o| object_offsets[o.index()] >= heap_start),
            "an object placement falls outside the heap section"
        );

        BinaryImage {
            total_size: svm_heap.end(),
            options,
            text,
            svm_heap,
            cu_order,
            cu_offsets,
            object_order,
            object_offsets,
            native_start,
            native_page_order: None,
        }
    }

    /// Number of pages in the native tail.
    pub fn native_pages(&self) -> u64 {
        self.options.native_tail / self.options.page_size
    }

    /// Applies a permutation to the native tail's pages — the paper's
    /// Appendix A future work ("we do not profile and hence reorder native
    /// methods…; we consider reordering these methods part of our future
    /// work"). `order[i]` gives the new physical page (within the tail) of
    /// logical page `i`.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..native_pages()`.
    pub fn set_native_page_order(&mut self, order: Vec<u32>) {
        let n = self.native_pages() as usize;
        assert_eq!(order.len(), n, "native order must cover the whole tail");
        let mut seen = vec![false; n];
        for &p in &order {
            assert!(
                (p as usize) < n && !seen[p as usize],
                "native order must be a permutation"
            );
            seen[p as usize] = true;
        }
        self.native_page_order = Some(order);
    }

    /// Maps an absolute offset through the native-tail page permutation.
    /// Offsets outside the tail are returned unchanged.
    pub fn map_native_offset(&self, offset: u64) -> u64 {
        let Some(order) = &self.native_page_order else {
            return offset;
        };
        if offset < self.native_start || offset >= self.text.size {
            return offset;
        }
        let ps = self.options.page_size;
        let rel = offset - self.native_start;
        let page = (rel / ps) as usize;
        let within = rel % ps;
        self.native_start + u64::from(order[page]) * ps + within
    }

    /// Absolute offset of a CU.
    ///
    /// # Panics
    /// Panics if the CU is not part of the image.
    pub fn cu_offset(&self, cu: CuId) -> u64 {
        let off = self.cu_offsets[cu.index()];
        assert_ne!(off, NO_OFFSET, "CU {cu} is not part of the image");
        off
    }

    /// Absolute offset of a snapshot object, or `None` if the object is not
    /// in the image (e.g. PEA-folded).
    #[inline]
    pub fn object_offset(&self, obj: ObjId) -> Option<u64> {
        match self.object_offsets.get(obj.index()) {
            Some(&off) if off != NO_OFFSET => Some(off),
            _ => None,
        }
    }

    /// The section containing an absolute offset.
    pub fn section_of(&self, offset: u64) -> Option<SectionKind> {
        if self.text.contains(offset) {
            Some(SectionKind::Text)
        } else if self.svm_heap.contains(offset) {
            Some(SectionKind::SvmHeap)
        } else {
            None
        }
    }

    /// Page index of an absolute offset.
    pub fn page_of(&self, offset: u64) -> u64 {
        offset / self.options.page_size
    }

    /// Number of pages spanned by the whole image.
    pub fn total_pages(&self) -> u64 {
        self.total_size.div_ceil(self.options.page_size)
    }

    /// Number of pages of the `.text` section.
    pub fn text_pages(&self) -> u64 {
        self.text.size.div_ceil(self.options.page_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimage_analysis::{analyze, AnalysisConfig};
    use nimage_compiler::{compile, InlineConfig, InstrumentConfig};
    use nimage_heap::{snapshot, HeapBuildConfig};
    use nimage_ir::{Program, ProgramBuilder, TypeRef};

    fn demo_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("t.Main", None);
        let fld = pb.add_static_field(c, "DATA", TypeRef::array_of(TypeRef::Int));
        let cl = pb.declare_clinit(c);
        let mut f = pb.body(cl);
        let n = f.iconst(100);
        let arr = f.new_array(TypeRef::Int, n);
        f.put_static(fld, arr);
        f.ret(None);
        pb.finish_body(cl, f);

        // Several CUs: one big method per letter so alphabetical order is
        // observable.
        let mut mains = vec![];
        for name in ["aa", "bb", "cc"] {
            let m = pb.declare_static(c, name, &[], Some(TypeRef::Int));
            let mut f = pb.body(m);
            let mut v = f.iconst(0);
            for _ in 0..60 {
                let one = f.iconst(1);
                v = f.add(v, one);
            }
            f.ret(Some(v));
            pb.finish_body(m, f);
            mains.push(m);
        }
        let main = pb.declare_static(c, "main", &[], Some(TypeRef::Int));
        let mut f = pb.body(main);
        let arr = f.get_static(fld);
        let zero = f.iconst(0);
        let v0 = f.array_get(arr, zero);
        let mut acc = v0;
        for &m in &mains {
            let v = f.call_static(m, &[], true).unwrap();
            acc = f.add(acc, v);
        }
        f.ret(Some(acc));
        pb.finish_body(main, f);
        pb.set_entry(main);
        pb.build().unwrap()
    }

    fn build_all(p: &Program) -> (nimage_compiler::CompiledProgram, nimage_heap::HeapSnapshot) {
        let reach = analyze(p, &AnalysisConfig::default());
        let cp = compile(
            p,
            reach,
            &InlineConfig::default(),
            InstrumentConfig::NONE,
            None,
        );
        let snap = snapshot(p, &cp, &HeapBuildConfig::default()).unwrap();
        (cp, snap)
    }

    #[test]
    fn sections_are_disjoint_and_page_aligned() {
        let p = demo_program();
        let (cp, snap) = build_all(&p);
        let img = BinaryImage::build(&cp, &snap, None, None, ImageOptions::default());
        assert_eq!(img.text.offset, 0);
        assert_eq!(img.svm_heap.offset % img.options.page_size, 0);
        assert!(img.svm_heap.offset >= img.text.end());
        assert_eq!(img.total_size, img.svm_heap.end());
    }

    #[test]
    fn cu_offsets_respect_order_and_alignment() {
        let p = demo_program();
        let (cp, snap) = build_all(&p);
        let img = BinaryImage::build(&cp, &snap, None, None, ImageOptions::default());
        let mut prev_end = 0;
        for &cu in &img.cu_order {
            let off = img.cu_offset(cu);
            assert_eq!(off % img.options.cu_align, 0);
            assert!(off >= prev_end);
            prev_end = off + u64::from(cp.cu(cu).size);
        }
        // Native tail sits after the last CU.
        assert!(img.text.size >= prev_end + img.options.native_tail);
    }

    #[test]
    fn custom_cu_order_changes_offsets() {
        let p = demo_program();
        let (cp, snap) = build_all(&p);
        let default = BinaryImage::build(&cp, &snap, None, None, ImageOptions::default());
        let mut reversed: Vec<CuId> = cp.cus.iter().map(|c| c.id).collect();
        reversed.reverse();
        let img = BinaryImage::build(
            &cp,
            &snap,
            Some(reversed.clone()),
            None,
            ImageOptions::default(),
        );
        assert_eq!(img.cu_order, reversed);
        if cp.cus.len() > 1 {
            assert_ne!(default.cu_offset(cp.cus[0].id), img.cu_offset(cp.cus[0].id));
        }
        // Section sizes agree modulo alignment padding.
        let align = ImageOptions::default().cu_align * cp.cus.len() as u64;
        assert!(default.text.size.abs_diff(img.text.size) <= align);
    }

    #[test]
    #[should_panic(expected = "must cover every CU")]
    fn partial_cu_order_is_rejected() {
        let p = demo_program();
        let (cp, snap) = build_all(&p);
        BinaryImage::build(&cp, &snap, Some(vec![]), None, ImageOptions::default());
    }

    #[test]
    fn section_of_and_pages() {
        let p = demo_program();
        let (cp, snap) = build_all(&p);
        let img = BinaryImage::build(&cp, &snap, None, None, ImageOptions::default());
        assert_eq!(img.section_of(0), Some(SectionKind::Text));
        assert_eq!(
            img.section_of(img.svm_heap.offset),
            Some(SectionKind::SvmHeap)
        );
        assert_eq!(img.section_of(img.total_size), None);
        assert_eq!(img.page_of(0), 0);
        assert_eq!(img.page_of(img.options.page_size), 1);
        assert!(img.total_pages() >= img.text_pages());
    }

    #[test]
    fn object_offsets_follow_object_order() {
        let p = demo_program();
        let (cp, snap) = build_all(&p);
        let img = BinaryImage::build(&cp, &snap, None, None, ImageOptions::default());
        let mut prev = img.svm_heap.offset;
        for &o in &img.object_order {
            let off = img.object_offset(o).unwrap();
            assert!(off >= prev);
            assert_eq!(off % img.options.obj_align, 0);
            prev = off;
        }
    }
}
