//! # nimage-image
//!
//! The simulated native-image binary: `.text` and `.svm_heap` section
//! layout, page geometry and a small serialized container format.
//!
//! A [`BinaryImage`] places
//!
//! * compilation units into `.text` (default: the compiler's alphabetical
//!   order, Sec. 2), followed by a *native tail* standing in for the
//!   statically linked native methods the paper's Fig. 6 shows at the end of
//!   `.text` (they are not compiled by Graal and not reordered);
//! * heap-snapshot objects into `.svm_heap` (default: CU order, Sec. 2),
//!   starting at the next page boundary.
//!
//! Ordering strategies simply pass permuted `cu_order` / `object_order`
//! slices to [`BinaryImage::build`]; everything else — offsets, page
//! boundaries, fault attribution in `nimage-vm` — follows from the layout.

#![warn(missing_docs)]

mod layout;
mod serial;

pub use layout::{BinaryImage, ImageOptions, SectionKind, SectionSpan};
pub use serial::{read_image_file, write_image_file, ImageFile, ImageFileError};
