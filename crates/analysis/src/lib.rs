//! # nimage-analysis
//!
//! Reachability analysis for nimage programs, standing in for GraalVM Native
//! Image's type-based points-to analysis (Wimmer et al., and the saturation
//! variant the paper cites in Sec. 2).
//!
//! The analysis is a Rapid-Type-Analysis-style fixpoint:
//!
//! * starting from the program entry point, it walks the bodies of reachable
//!   methods;
//! * `new C` marks `C` *instantiated* (allowing its methods to become virtual
//!   dispatch targets) and *reachable* (so its `<clinit>` runs at build time
//!   and its static fields become heap roots);
//! * virtual call sites dispatch to every instantiated subclass of the
//!   declared receiver type — unless the selector **saturates**: once the
//!   target set of a selector grows past [`AnalysisConfig::saturation_threshold`],
//!   the analysis marks *every* implementation of the selector reachable,
//!   mirroring the conservative saturation optimization of Native Image;
//! * static field accesses mark the field (and its owner class) reachable;
//! * `spawn` targets are additional entry points.
//!
//! The result deliberately *over-approximates* the executed code — the paper
//! notes that "the points-to analysis is conservative and always includes
//! more code than what is actually reachable or executed at runtime", which
//! is exactly why profile-guided reordering helps.

#![warn(missing_docs)]

use std::collections::{HashMap, HashSet, VecDeque};

use nimage_ir::{Callee, ClassId, FieldId, Instr, MethodId, MethodKind, Program, SelectorId};

/// Tuning knobs for the reachability analysis.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Once a selector has this many possible targets, the analysis
    /// saturates it: all implementations anywhere in the class hierarchy are
    /// marked reachable (Sec. 2's saturation).
    pub saturation_threshold: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            saturation_threshold: 6,
        }
    }
}

/// Identifies one call instruction inside a method body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CallSite {
    /// The calling method.
    pub method: MethodId,
    /// Block index within the caller.
    pub block: usize,
    /// Instruction index within the block.
    pub instr: usize,
}

/// Result of [`analyze`].
#[derive(Debug, Clone)]
pub struct Reachability {
    /// Reachable methods in deterministic discovery order. Class
    /// initializers are *not* listed here (they execute at build time and
    /// are not compiled into the image); see [`Reachability::build_time_inits`].
    pub methods: Vec<MethodId>,
    /// Classes that may be instantiated at run time.
    pub instantiated: Vec<ClassId>,
    /// All reachable classes (instantiated ∪ owners of reachable members ∪
    /// superclasses thereof), in discovery order.
    pub classes: Vec<ClassId>,
    /// Reachable static fields (heap-snapshot roots), in discovery order.
    pub static_fields: Vec<FieldId>,
    /// Reachable instance fields.
    pub instance_fields: Vec<FieldId>,
    /// Class initializers to execute at image build time, in execution order
    /// (discovery order of their classes).
    pub build_time_inits: Vec<MethodId>,
    /// Possible targets of every reachable virtual call site.
    pub virtual_targets: HashMap<CallSite, Vec<MethodId>>,
    /// Selectors whose target sets saturated.
    pub saturated: HashSet<SelectorId>,
    /// Direct call-graph edges `(caller, callee)` for static calls and
    /// monomorphic virtual calls — the edges the inliner may act on.
    pub direct_edges: Vec<(MethodId, MethodId)>,
}

impl Reachability {
    /// Whether a method is reachable.
    pub fn is_method_reachable(&self, m: MethodId) -> bool {
        self.methods.contains(&m)
    }

    /// Whether a class is reachable.
    pub fn is_class_reachable(&self, c: ClassId) -> bool {
        self.classes.contains(&c)
    }
}

/// A conservative whole-program call graph over *every* method body —
/// including class initializers, which [`analyze`] deliberately excludes
/// from its reachable-method list because they run at build time.
///
/// Virtual sites are resolved against the full class hierarchy (the
/// declared receiver and all of its subclasses), not the instantiated
/// set: clients like the clinit-purity interprocedural analysis in
/// `nimage-verify` need summaries that over-approximate any possible
/// execution, not just post-analysis runtime behavior.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// `callees[m]` — methods that method `m` may call, sorted and
    /// deduplicated.
    pub callees: Vec<Vec<MethodId>>,
    /// `spawns[m]` — methods that `m` hands to `spawn` (started, not
    /// called; effects happen on another thread).
    pub spawns: Vec<Vec<MethodId>>,
}

impl CallGraph {
    /// Builds the call graph of `program`.
    pub fn build(program: &Program) -> CallGraph {
        let n = program.methods().len();
        let mut callees: Vec<Vec<MethodId>> = vec![vec![]; n];
        let mut spawns: Vec<Vec<MethodId>> = vec![vec![]; n];
        for (m, method) in program.methods().iter().enumerate() {
            for block in &method.blocks {
                for instr in &block.instrs {
                    match instr {
                        Instr::Call { callee, .. } => match callee {
                            Callee::Static(t) => callees[m].push(*t),
                            Callee::Virtual { declared, selector } => {
                                for c in program.subclasses_of(*declared) {
                                    if let Some(t) = program.resolve_virtual(c, *selector) {
                                        callees[m].push(t);
                                    }
                                }
                            }
                        },
                        Instr::Spawn { method: t, .. } => spawns[m].push(*t),
                        _ => {}
                    }
                }
            }
            callees[m].sort_unstable();
            callees[m].dedup();
            spawns[m].sort_unstable();
            spawns[m].dedup();
        }
        CallGraph { callees, spawns }
    }
}

#[derive(Default)]
struct State {
    method_seen: HashSet<MethodId>,
    methods: Vec<MethodId>,
    instantiated_seen: HashSet<ClassId>,
    instantiated: Vec<ClassId>,
    class_seen: HashSet<ClassId>,
    classes: Vec<ClassId>,
    sfield_seen: HashSet<FieldId>,
    static_fields: Vec<FieldId>,
    ifield_seen: HashSet<FieldId>,
    instance_fields: Vec<FieldId>,
    worklist: VecDeque<MethodId>,
    /// selector -> discovered target methods
    selector_targets: HashMap<SelectorId, HashSet<MethodId>>,
    saturated: HashSet<SelectorId>,
    /// virtual call sites discovered so far, per selector, with declared type
    pending_sites: HashMap<SelectorId, Vec<(CallSite, ClassId)>>,
}

impl State {
    fn mark_method(&mut self, m: MethodId) {
        if self.method_seen.insert(m) {
            self.methods.push(m);
            self.worklist.push_back(m);
        }
    }

    fn mark_class(&mut self, p: &Program, c: ClassId) {
        let mut cur = Some(c);
        while let Some(cls) = cur {
            if !self.class_seen.insert(cls) {
                break;
            }
            self.classes.push(cls);
            cur = p.class(cls).superclass;
        }
    }

    fn mark_instantiated(&mut self, p: &Program, c: ClassId) -> bool {
        self.mark_class(p, c);
        if self.instantiated_seen.insert(c) {
            self.instantiated.push(c);
            true
        } else {
            false
        }
    }
}

/// Runs the reachability analysis from the program's entry point.
///
/// # Panics
/// Panics if the program has no entry point.
pub fn analyze(program: &Program, config: &AnalysisConfig) -> Reachability {
    let entry = program.entry.expect("program has no entry point");
    let mut st = State::default();

    st.mark_method(entry);
    st.mark_class(program, program.method(entry).owner);

    while let Some(mid) = st.worklist.pop_front() {
        let method = program.method(mid);
        st.mark_class(program, method.owner);
        let mut newly_instantiated: Vec<ClassId> = vec![];
        for (bi, block) in method.blocks.iter().enumerate() {
            for (ii, instr) in block.instrs.iter().enumerate() {
                match instr {
                    Instr::New(_, c) if st.mark_instantiated(program, *c) => {
                        newly_instantiated.push(*c);
                    }
                    Instr::GetStatic(_, f) | Instr::PutStatic(f, _) => {
                        if st.sfield_seen.insert(*f) {
                            st.static_fields.push(*f);
                        }
                        st.mark_class(program, program.field(*f).owner);
                    }
                    Instr::GetField(_, _, f) | Instr::PutField(_, f, _) => {
                        if st.ifield_seen.insert(*f) {
                            st.instance_fields.push(*f);
                        }
                        st.mark_class(program, program.field(*f).owner);
                    }
                    Instr::Call { callee, .. } => match callee {
                        Callee::Static(callee_m) => st.mark_method(*callee_m),
                        Callee::Virtual { declared, selector } => {
                            let site = CallSite {
                                method: mid,
                                block: bi,
                                instr: ii,
                            };
                            st.pending_sites
                                .entry(*selector)
                                .or_default()
                                .push((site, *declared));
                            resolve_selector(program, config, &mut st, *declared, *selector);
                        }
                    },
                    Instr::Spawn { method: m, .. } => st.mark_method(*m),
                    _ => {}
                }
            }
        }
        // New instantiations may enable targets at previously seen sites.
        for c in newly_instantiated {
            flow_new_instance(program, config, &mut st, c);
        }
    }

    // Final target sets per site.
    let mut virtual_targets: HashMap<CallSite, Vec<MethodId>> = HashMap::new();
    for (selector, sites) in &st.pending_sites {
        for &(site, declared) in sites {
            let targets = targets_for(program, &st, declared, *selector);
            virtual_targets.insert(site, targets);
        }
    }

    let mut direct_edges = vec![];
    for &m in &st.methods {
        let method = program.method(m);
        for (bi, block) in method.blocks.iter().enumerate() {
            for (ii, instr) in block.instrs.iter().enumerate() {
                if let Instr::Call { callee, .. } = instr {
                    match callee {
                        Callee::Static(c) => direct_edges.push((m, *c)),
                        Callee::Virtual { .. } => {
                            let site = CallSite {
                                method: m,
                                block: bi,
                                instr: ii,
                            };
                            if let Some(ts) = virtual_targets.get(&site) {
                                if ts.len() == 1 {
                                    direct_edges.push((m, ts[0]));
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // Build-time class initializers, in class discovery order.
    let build_time_inits = st
        .classes
        .iter()
        .filter_map(|&c| program.class(c).clinit)
        .collect();

    Reachability {
        methods: st.methods,
        instantiated: st.instantiated,
        classes: st.classes,
        static_fields: st.static_fields,
        instance_fields: st.instance_fields,
        build_time_inits,
        virtual_targets,
        saturated: st.saturated,
        direct_edges,
    }
}

/// Resolves a (declared, selector) pair against the current instantiated set
/// and marks targets reachable, applying saturation.
fn resolve_selector(
    program: &Program,
    config: &AnalysisConfig,
    st: &mut State,
    declared: ClassId,
    selector: SelectorId,
) {
    if st.saturated.contains(&selector) {
        saturate(program, st, selector);
        return;
    }
    let mut found: Vec<MethodId> = vec![];
    for &c in &st.instantiated {
        if program.is_subclass(c, declared) {
            if let Some(t) = program.resolve_virtual(c, selector) {
                found.push(t);
            }
        }
    }
    for t in found {
        add_selector_target(program, config, st, selector, t);
    }
}

/// When class `c` becomes instantiated, any previously seen virtual site
/// whose declared type is a superclass of `c` gains a target.
fn flow_new_instance(program: &Program, config: &AnalysisConfig, st: &mut State, c: ClassId) {
    let selectors: Vec<SelectorId> = st.pending_sites.keys().copied().collect();
    for selector in selectors {
        if st.saturated.contains(&selector) {
            continue;
        }
        let declared_types: Vec<ClassId> = st.pending_sites[&selector]
            .iter()
            .map(|&(_, d)| d)
            .collect();
        for declared in declared_types {
            if program.is_subclass(c, declared) {
                if let Some(t) = program.resolve_virtual(c, selector) {
                    add_selector_target(program, config, st, selector, t);
                }
            }
        }
    }
}

fn add_selector_target(
    program: &Program,
    config: &AnalysisConfig,
    st: &mut State,
    selector: SelectorId,
    target: MethodId,
) {
    let set = st.selector_targets.entry(selector).or_default();
    let inserted = set.insert(target);
    let len = set.len();
    if inserted {
        st.mark_method(target);
        if len >= config.saturation_threshold {
            st.saturated.insert(selector);
            saturate(program, st, selector);
        }
    }
}

/// Marks every implementation of `selector` in the whole program reachable.
fn saturate(program: &Program, st: &mut State, selector: SelectorId) {
    let mut targets = vec![];
    for m in 0..program.methods().len() {
        let mid = MethodId::from(m);
        let method = program.method(mid);
        if method.selector == selector && method.kind == MethodKind::Virtual {
            targets.push(mid);
        }
    }
    for t in targets {
        st.selector_targets.entry(selector).or_default().insert(t);
        st.mark_method(t);
        st.mark_class(program, program.method(t).owner);
    }
}

/// Final possible-target list for a site, in deterministic (method id) order.
fn targets_for(
    program: &Program,
    st: &State,
    declared: ClassId,
    selector: SelectorId,
) -> Vec<MethodId> {
    let mut out: Vec<MethodId> = if st.saturated.contains(&selector) {
        st.selector_targets
            .get(&selector)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    } else {
        let mut v = vec![];
        for &c in &st.instantiated {
            if program.is_subclass(c, declared) {
                if let Some(t) = program.resolve_virtual(c, selector) {
                    v.push(t);
                }
            }
        }
        v
    };
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimage_ir::{ProgramBuilder, TypeRef};

    /// entry -> calls Base.run virtually on the given instantiated classes.
    fn hierarchy_program(n_subclasses: usize, instantiate: &[usize]) -> (Program, Vec<MethodId>) {
        let mut pb = ProgramBuilder::new();
        let base = pb.add_class("t.Base", None);
        let run_base = pb.declare_virtual(base, "run", &[], Some(TypeRef::Int));
        let mut f = pb.body(run_base);
        let v = f.iconst(0);
        f.ret(Some(v));
        pb.finish_body(run_base, f);

        let mut runs = vec![run_base];
        let mut classes = vec![base];
        for i in 0..n_subclasses {
            let c = pb.add_class(&format!("t.Sub{i}"), Some(base));
            let m = pb.declare_virtual(c, "run", &[], Some(TypeRef::Int));
            let mut f = pb.body(m);
            let v = f.iconst(i as i64 + 1);
            f.ret(Some(v));
            pb.finish_body(m, f);
            runs.push(m);
            classes.push(c);
        }

        let main_cls = pb.add_class("t.Main", None);
        let main = pb.declare_static(main_cls, "main", &[], Some(TypeRef::Int));
        let sel = pb.intern_selector("run", 0);
        let mut f = pb.body(main);
        let mut last = f.iconst(0);
        for &idx in instantiate {
            let obj = f.new_object(classes[idx]);
            last = f.call_virtual(base, sel, &[obj], true).unwrap();
        }
        f.ret(Some(last));
        pb.finish_body(main, f);
        pb.set_entry(main);
        (pb.build().unwrap(), runs)
    }

    #[test]
    fn only_instantiated_targets_are_reachable() {
        let (p, runs) = hierarchy_program(3, &[2]); // instantiate Sub1 only
        let r = analyze(&p, &AnalysisConfig::default());
        assert!(r.is_method_reachable(runs[2]));
        assert!(!r.is_method_reachable(runs[1]));
        assert!(!r.is_method_reachable(runs[3]));
    }

    #[test]
    fn monomorphic_virtual_call_produces_direct_edge() {
        let (p, runs) = hierarchy_program(3, &[1]);
        let r = analyze(&p, &AnalysisConfig::default());
        let entry = p.entry.unwrap();
        assert!(r.direct_edges.contains(&(entry, runs[1])));
    }

    #[test]
    fn polymorphic_call_has_no_direct_edge_but_all_targets_reachable() {
        let (p, runs) = hierarchy_program(3, &[1, 2]);
        let r = analyze(&p, &AnalysisConfig::default());
        assert!(!r.direct_edges.iter().any(|&(_, t)| t == runs[1]));
        assert!(r.is_method_reachable(runs[1]));
        assert!(r.is_method_reachable(runs[2]));
    }

    #[test]
    fn saturation_marks_all_implementations() {
        let (p, runs) = hierarchy_program(10, &[1, 2, 3, 4, 5, 6]);
        let cfg = AnalysisConfig {
            saturation_threshold: 4,
        };
        let r = analyze(&p, &cfg);
        assert_eq!(r.saturated.len(), 1);
        // Even never-instantiated Sub9.run becomes reachable (conservatism).
        assert!(r.is_method_reachable(*runs.last().unwrap()));
    }

    #[test]
    fn without_saturation_uninstantiated_stay_unreachable() {
        let (p, runs) = hierarchy_program(10, &[1, 2, 3]);
        let cfg = AnalysisConfig {
            saturation_threshold: 100,
        };
        let r = analyze(&p, &cfg);
        assert!(r.saturated.is_empty());
        assert!(!r.is_method_reachable(*runs.last().unwrap()));
    }

    #[test]
    fn static_fields_and_clinits_become_reachable() {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("t.A", None);
        let fld = pb.add_static_field(a, "X", TypeRef::Int);
        let cl = pb.declare_clinit(a);
        let mut f = pb.body(cl);
        let v = f.iconst(42);
        f.put_static(fld, v);
        f.ret(None);
        pb.finish_body(cl, f);

        let main_cls = pb.add_class("t.Main", None);
        let main = pb.declare_static(main_cls, "main", &[], Some(TypeRef::Int));
        let mut f = pb.body(main);
        let v = f.get_static(fld);
        f.ret(Some(v));
        pb.finish_body(main, f);
        pb.set_entry(main);
        let p = pb.build().unwrap();

        let r = analyze(&p, &AnalysisConfig::default());
        assert_eq!(r.static_fields, vec![fld]);
        assert_eq!(r.build_time_inits, vec![cl]);
        // clinit is not a compiled (runtime) method.
        assert!(!r.is_method_reachable(cl));
    }

    #[test]
    fn spawn_target_is_entry_point() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("t.Main", None);
        let worker = pb.declare_static(c, "worker", &[], None);
        let mut f = pb.body(worker);
        f.ret(None);
        pb.finish_body(worker, f);
        let main = pb.declare_static(c, "main", &[], None);
        let mut f = pb.body(main);
        f.spawn(worker, &[]);
        f.ret(None);
        pb.finish_body(main, f);
        pb.set_entry(main);
        let p = pb.build().unwrap();
        let r = analyze(&p, &AnalysisConfig::default());
        assert!(r.is_method_reachable(worker));
    }

    #[test]
    fn unreachable_code_is_excluded() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("t.Main", None);
        let dead = pb.declare_static(c, "dead", &[], None);
        let mut f = pb.body(dead);
        f.ret(None);
        pb.finish_body(dead, f);
        let main = pb.declare_static(c, "main", &[], None);
        let mut f = pb.body(main);
        f.ret(None);
        pb.finish_body(main, f);
        pb.set_entry(main);
        let p = pb.build().unwrap();
        let r = analyze(&p, &AnalysisConfig::default());
        assert!(!r.is_method_reachable(dead));
        assert_eq!(r.methods, vec![main]);
    }

    #[test]
    fn discovery_order_is_deterministic() {
        let (p, _) = hierarchy_program(5, &[1, 3, 2]);
        let r1 = analyze(&p, &AnalysisConfig::default());
        let r2 = analyze(&p, &AnalysisConfig::default());
        assert_eq!(r1.methods, r2.methods);
        assert_eq!(r1.classes, r2.classes);
        assert_eq!(r1.instantiated, r2.instantiated);
    }
}
