//! `nimage bench --json` stdout purity: when the report goes to stdout
//! (bare `--json` or `--json -`), stdout must carry exactly one JSON
//! value and nothing else — every human-facing line goes to stderr, so
//! `nimage bench --json - | jq` style consumers never have to strip
//! progress text.

use std::process::Command;

/// A minimal JSON reader: consumes one value, returns the rest of the
/// input. Enough to prove stdout is well-formed JSON without pulling a
/// parser crate into the workspace.
fn skip_value(s: &str) -> Result<&str, String> {
    let s = s.trim_start();
    let mut chars = s.char_indices();
    match chars.next().map(|(_, c)| c) {
        Some('{') => skip_container(&s[1..], '}'),
        Some('[') => skip_container(&s[1..], ']'),
        Some('"') => skip_string(&s[1..]),
        Some(c) if c == '-' || c.is_ascii_digit() => {
            let end = s
                .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
                .unwrap_or(s.len());
            Ok(&s[end..])
        }
        _ => ["true", "false", "null"]
            .iter()
            .find_map(|kw| s.strip_prefix(kw))
            .ok_or_else(|| format!("unexpected JSON at {:?}", &s[..s.len().min(40)])),
    }
}

fn skip_string(mut s: &str) -> Result<&str, String> {
    loop {
        let i = s.find(['"', '\\']).ok_or("unterminated string")?;
        match &s[i..i + 1] {
            "\"" => return Ok(&s[i + 1..]),
            _ => s = s.get(i + 2..).ok_or("dangling escape")?,
        }
    }
}

fn skip_container(mut s: &str, close: char) -> Result<&str, String> {
    loop {
        s = s.trim_start();
        if let Some(rest) = s.strip_prefix(close) {
            return Ok(rest);
        }
        if close == '}' {
            let rest = s.trim_start();
            s = skip_string(rest.strip_prefix('"').ok_or_else(|| {
                format!("expected object key at {:?}", &rest[..rest.len().min(40)])
            })?)?;
            s = s
                .trim_start()
                .strip_prefix(':')
                .ok_or("expected ':' after key")?;
        }
        s = skip_value(s)?;
        s = s.trim_start();
        s = s.strip_prefix(',').unwrap_or(s);
    }
}

/// Parses `s` as exactly one JSON value with nothing around it.
fn assert_single_json_value(s: &str) {
    let rest = skip_value(s).unwrap_or_else(|e| panic!("stdout is not JSON: {e}\n---\n{s}"));
    assert!(
        rest.trim().is_empty(),
        "trailing non-JSON bytes on stdout: {:?}",
        &rest[..rest.len().min(120)]
    );
}

fn run_bench(json_arg: &[&str]) -> (String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_nimage"))
        .arg("bench")
        .arg("quickstart")
        .args(json_arg)
        .args(["--threads", "2", "--no-disk-cache"])
        .output()
        .expect("nimage bench runs");
    assert!(
        out.status.success(),
        "bench failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        String::from_utf8(out.stderr).expect("utf-8 stderr"),
    )
}

#[test]
fn bare_json_flag_keeps_stdout_pure() {
    let (stdout, stderr) = run_bench(&["--json"]);
    assert_single_json_value(&stdout);
    assert!(
        stdout.contains("\"report_version\": 1"),
        "versioned report missing: {stdout}"
    );
    assert!(stdout.contains("\"stage_speedups\""));
    assert!(stdout.contains("\"report\":"));
    // The human narration still happened — on the other stream.
    assert!(
        stderr.contains("benchmarking"),
        "progress text must go to stderr: {stderr}"
    );
    assert!(stderr.contains("strategies:"), "table goes to stderr");
}

#[test]
fn json_dash_keeps_stdout_pure() {
    let (stdout, _) = run_bench(&["--json", "-"]);
    assert_single_json_value(&stdout);
    assert!(stdout.contains("\"report_version\": 1"));
}
