//! The quickstart demo program as a named CLI workload.
//!
//! Mirrors `examples/quickstart.rs`: a cold-but-reachable half, a hot
//! half, and a heap snapshot built by a class initializer — the minimal
//! shape on which binary reordering pays off. Exposed as the `quickstart`
//! workload so `nimage lint quickstart` can exercise every verifier in CI
//! without depending on the example binary.

use nimage_ir::{Program, ProgramBuilder, TypeRef, ValidateError};

/// Errors surfaced while assembling a CLI-built demo program. Assembly
/// failures used to abort the whole CLI via `unwrap`; they now propagate
/// to the subcommand's error path like any other failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuilderError {
    /// A helper call that must produce a value produced none.
    MissingResult(&'static str),
    /// The assembled program failed IR validation.
    Validate(ValidateError),
}

impl std::fmt::Display for BuilderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuilderError::MissingResult(what) => {
                write!(f, "quickstart builder: {what} returned no value")
            }
            BuilderError::Validate(e) => write!(f, "quickstart builder: {e}"),
        }
    }
}

impl std::error::Error for BuilderError {}

impl From<ValidateError> for BuilderError {
    fn from(e: ValidateError) -> Self {
        BuilderError::Validate(e)
    }
}

/// Builds the quickstart demo program.
///
/// # Errors
/// Returns a [`BuilderError`] when a worker call yields no value or the
/// assembled program fails validation.
pub fn program() -> Result<Program, BuilderError> {
    let mut pb = ProgramBuilder::new();

    let cell = pb.add_class("demo.Cell", None);
    let cell_val = pb.add_instance_field(cell, "val", TypeRef::Int);
    let data = pb.add_class("demo.Data", None);
    let table = pb.add_static_field(data, "TABLE", TypeRef::array_of(TypeRef::Object(cell)));
    let clinit = pb.declare_clinit(data);
    let mut f = pb.body(clinit);
    let n = f.iconst(8_000);
    let arr = f.new_array(TypeRef::Object(cell), n);
    let from = f.iconst(0);
    f.for_range(from, n, |f, i| {
        let c = f.new_object(cell);
        let sq = f.mul(i, i);
        f.put_field(c, cell_val, sq);
        f.array_set(arr, i, c);
    });
    f.put_static(table, arr);
    f.ret(None);
    pb.finish_body(clinit, f);

    let app = pb.add_class("demo.Main", None);
    let cold_flag = pb.add_static_field(app, "COLD", TypeRef::Bool);
    let mut workers = vec![];
    for i in 0..60 {
        let m = pb.declare_static(app, &format!("step{i:02}"), &[], Some(TypeRef::Int));
        let mut f = pb.body(m);
        let mut v = f.iconst(i);
        for _ in 0..300 {
            let one = f.iconst(1);
            v = f.add(v, one);
        }
        f.ret(Some(v));
        pb.finish_body(m, f);
        workers.push(m);
    }

    let main = pb.declare_static(app, "main", &[], Some(TypeRef::Int));
    let mut f = pb.body(main);
    let acc = f.iconst(0);
    // Keep everything reachable; execute only every fifth step.
    let take_cold = f.get_static(cold_flag);
    let cold: Vec<_> = workers
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 5 != 0)
        .map(|(_, &m)| m)
        .collect();
    // Builder closures cannot propagate with `?`; record the first failure
    // and surface it once the closure returns.
    let mut call_err: Option<BuilderError> = None;
    f.if_then(take_cold, |f| {
        for &m in &cold {
            let Some(v) = f.call_static(m, &[], true) else {
                call_err = Some(BuilderError::MissingResult("cold worker call"));
                return;
            };
            let s = f.add(acc, v);
            f.assign(acc, s);
        }
    });
    if let Some(e) = call_err {
        return Err(e);
    }
    for (i, &m) in workers.iter().enumerate() {
        if i % 5 == 0 {
            let v = f
                .call_static(m, &[], true)
                .ok_or(BuilderError::MissingResult("hot worker call"))?;
            let s = f.add(acc, v);
            f.assign(acc, s);
        }
    }
    // Read a sparse sample of the snapshot.
    let arr = f.get_static(table);
    let len = f.array_len(arr);
    let stride = f.iconst(400);
    let i = f.iconst(0);
    f.while_loop(
        |f| f.lt(i, len),
        |f| {
            let c = f.array_get(arr, i);
            let v = f.get_field(c, cell_val);
            let s = f.add(acc, v);
            f.assign(acc, s);
            let next = f.add(i, stride);
            f.assign(i, next);
        },
    );
    f.ret(Some(acc));
    pb.finish_body(main, f);
    pb.set_entry(main);
    Ok(pb.build()?)
}

#[cfg(test)]
mod tests {
    #[test]
    fn quickstart_program_builds() {
        let p = super::program().expect("quickstart program validates");
        assert!(p.entry.is_some());
        assert!(p.methods().len() > 60);
    }

    #[test]
    fn builder_errors_format_without_panicking() {
        use super::BuilderError;
        let e = BuilderError::MissingResult("cold worker call");
        assert!(e.to_string().contains("cold worker call"));
    }
}
