//! Workload resolution shared by the CLI subcommands.

use nimage_ir::Program;
use nimage_profiler::DumpMode;
use nimage_vm::StopWhen;
use nimage_workloads::{Awfy, Microservice, RuntimeScale};

use crate::args::ArgError;
use crate::quickstart::BuilderError;

/// A named evaluation workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// An AWFY benchmark (FaaS model).
    Awfy(Awfy),
    /// A microservice helloworld (time to first response).
    Micro(Microservice),
    /// The quickstart demo program (small; used by `nimage lint` in CI).
    Quickstart,
}

impl Workload {
    /// All AWFY workloads.
    pub fn awfy() -> impl Iterator<Item = Workload> {
        Awfy::all().into_iter().map(Workload::Awfy)
    }

    /// All microservice workloads.
    pub fn micro() -> impl Iterator<Item = Workload> {
        Microservice::all().into_iter().map(Workload::Micro)
    }

    /// Resolves a (case-insensitive) workload name.
    pub fn resolve(name: &str) -> Result<Workload, ArgError> {
        Self::awfy()
            .chain(Self::micro())
            .chain(std::iter::once(Workload::Quickstart))
            .find(|w| w.name().eq_ignore_ascii_case(name))
            .ok_or_else(|| {
                ArgError(format!(
                    "unknown workload {name}; run `nimage list` for the available ones"
                ))
            })
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Awfy(b) => b.name(),
            Workload::Micro(m) => m.name(),
            Workload::Quickstart => "quickstart",
        }
    }

    /// Builds the workload's program at the evaluation scale.
    ///
    /// # Errors
    /// Propagates the quickstart builder's [`BuilderError`]; the baked-in
    /// benchmark programs cannot fail to assemble.
    pub fn program(&self) -> Result<Program, BuilderError> {
        Ok(match self {
            Workload::Awfy(b) => b.program(),
            Workload::Micro(m) => m.program(),
            Workload::Quickstart => crate::quickstart::program()?,
        })
    }

    /// Builds the workload's program at a reduced scale for the
    /// determinism audits: bit-identity is a structural property, so the
    /// audit's two full instrumented runs don't need evaluation-scale
    /// iteration counts (which would dominate `lint --all`).
    ///
    /// # Errors
    /// Propagates the quickstart builder's [`BuilderError`].
    pub fn audit_program(&self) -> Result<Program, BuilderError> {
        let scale = RuntimeScale::small();
        Ok(match self {
            Workload::Awfy(b) => b.program_at(&scale),
            Workload::Micro(m) => m.program_at(&scale),
            Workload::Quickstart => crate::quickstart::program()?,
        })
    }

    /// When the measured run stops.
    pub fn stop(&self) -> StopWhen {
        match self {
            Workload::Awfy(_) | Workload::Quickstart => StopWhen::Exit,
            Workload::Micro(_) => StopWhen::FirstResponse,
        }
    }

    /// The trace-buffer dump mode the paper uses for this workload class.
    pub fn dump_mode(&self) -> DumpMode {
        match self {
            Workload::Awfy(_) | Workload::Quickstart => DumpMode::OnFull,
            Workload::Micro(_) => DumpMode::MemoryMapped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_case_insensitively() {
        assert_eq!(Workload::resolve("bounce").unwrap().name(), "Bounce");
        assert_eq!(Workload::resolve("SPRING").unwrap().name(), "spring");
        assert!(Workload::resolve("nope").is_err());
    }

    #[test]
    fn workload_classes_use_the_paper_setup() {
        let b = Workload::resolve("Sieve").unwrap();
        assert_eq!(b.stop(), StopWhen::Exit);
        assert_eq!(b.dump_mode(), DumpMode::OnFull);
        let m = Workload::resolve("quarkus").unwrap();
        assert_eq!(m.stop(), StopWhen::FirstResponse);
        assert_eq!(m.dump_mode(), DumpMode::MemoryMapped);
    }

    #[test]
    fn seventeen_workloads_total() {
        assert_eq!(Workload::awfy().count() + Workload::micro().count(), 17);
    }

    #[test]
    fn quickstart_resolves() {
        assert_eq!(
            Workload::resolve("quickstart").unwrap().name(),
            "quickstart"
        );
    }
}
