//! `nimage` — command-line driver for the binary-reordering toolchain.
//!
//! ```text
//! nimage list                                   all workloads
//! nimage eval <workload> [--strategy S|--all]   fault/speedup factors
//! nimage run <workload> [--strategy S]          build one image and run it
//! nimage bench [workload] [--json [FILE|-]] [--trace-out FILE]
//!                                               engine vs serial wall-clock
//! nimage profile <workload> --out DIR           write CSV profiles + trace
//! nimage optimize <workload> --profiles DIR --strategy S --out FILE
//! nimage inspect <image-file>                   dump a serialized image
//! nimage pagemap <workload> [--strategy S] [--width N]
//! nimage overhead <workload>                    Sec. 7.4 overhead factors
//! nimage lint <workload>|--all [--strategy S] [--report] [--format text|json]
//! nimage cache stats|gc|clear [--cache-dir DIR] disk artifact cache
//! nimage help
//! ```

mod args;
mod quickstart;
mod workload;

use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use nimage_core::{
    load_profiles, save_profiles, BuildOptions, BuildRequest, DiskCacheOptions, DiskStore, Engine,
    EngineOptions, EvalInputs, EvalRequest, Evaluation, LayoutOrders, Parallelism, Pipeline,
    Report, RunParts, Strategy, TraceOptions, WorkloadSpec, DISK_FORMAT_VERSION,
};
use nimage_profiler::{write_trace, DumpMode};
use nimage_vm::{render_ascii, summarize, CostModel, VmConfig};

use args::{parse, ArgError, ParsedArgs};
use workload::Workload;

const HELP: &str = "\
nimage — profile-guided binary reordering (CGO'25 reproduction)

USAGE:
    nimage <command> [args]

COMMANDS:
    list                                     list available workloads
    eval <workload> [--strategy S | --all] [--threads N]
                                             profile + evaluate strategies on the evaluation
                                             engine (shared artifact cache, worker threads)
    run <workload> [--strategy S]            build one image (reordered when --strategy is
                                             given) and run it, printing the measured report
    bench [workload] [--json [FILE|-]] [--trace-out FILE] [--threads N]
                                             time the engine (cached, parallel) against the
                                             serial uncached loop over every strategy and
                                             report per-stage wall-clock + cache hit counts;
                                             --json writes the versioned JSON report (bare
                                             --json or `-`: to stdout, human text on stderr);
                                             --trace-out writes a Chrome-trace JSON of the
                                             engine's spans (load at ui.perfetto.dev), and
                                             turns on VM-level fault events (--trace-events
                                             records them without the export)
    profile <workload> --out DIR             write ordering profiles (CSV) and the raw trace
    optimize <workload> --profiles DIR --strategy S --out FILE
                                             build a reordered image and serialize it
    inspect <image-file>                     print the layout of a serialized image
    pagemap <workload> [--strategy S] [--width N]
                                             Fig. 6-style page map of both sections
    heapstats <workload>                     snapshot composition + layout quality
    overhead <workload>                      profiling overhead factors (Sec. 7.4)
    lint <workload>|--all [--strategy S] [--report] [--format text|json]
                                             run the nimage-verify checkers over the whole
                                             pipeline (--all: every workload); non-zero exit
                                             on any error finding; --report also prints
                                             layout-quality metrics; --format json writes a
                                             machine-readable report to stdout (for CI)
    cache stats [--cache-dir DIR]            inspect the disk artifact cache
    cache gc [--cache-dir DIR] [--max-bytes N] [--max-entries N]
                                             sweep stale temp files and evict the
                                             oldest-accessed entries until under the caps
    cache clear [--cache-dir DIR]            wipe the disk artifact cache
    help                                     this text

STRATEGIES: cu, method, incremental-id, structural-hash, heap-path, cu+heap-path,
            cu-clustered, cu-clustered+heap-path (fault-cost-aware layout optimizer)
WORKLOADS:  the 14 AWFY benchmarks, micronaut/quarkus/spring, and `quickstart`

`run` and `eval` accept --verify / --no-verify to toggle the nimage-verify
checkers inside the pipeline (default: on in debug builds, off in release).
`eval`, `bench` and `lint` persist expensive artifacts under
$XDG_CACHE_HOME/nimage (else ~/.cache/nimage); --cache-dir DIR relocates
it, --no-disk-cache disables it. --max-bytes N / --max-entries N cap the
cache: the engine sweeps it opportunistically after storing new entries,
and `cache gc` sweeps on demand. --threads N sets the worker count
(0 = auto); `run` uses it for intra-stage parallelism. --salted-heap-ids
enables per-type salting of heap-path identities (`run`/`eval`).
";

fn strategy_of(name: &str) -> Result<Strategy, ArgError> {
    let normalized = name.to_ascii_lowercase().replace(['_', ' '], "-");
    Strategy::all()
        .into_iter()
        .find(|s| s.name().replace(' ', "-") == normalized)
        .ok_or_else(|| {
            ArgError(format!(
                "unknown strategy {name}; expected one of: {}",
                Strategy::all()
                    .map(|s| s.name().replace(' ', "-"))
                    .join(", ")
            ))
        })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(argv: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let parsed = match parse(argv) {
        Ok(p) => p,
        Err(_) if argv.is_empty() => {
            print!("{HELP}");
            return Ok(());
        }
        Err(e) => return Err(e.into()),
    };
    match parsed.command.as_str() {
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(())
        }
        "list" => {
            println!("AWFY (FaaS model, end-to-end time):");
            for w in Workload::awfy() {
                println!("  {}", w.name());
            }
            println!("microservices (time to first response):");
            for w in Workload::micro() {
                println!("  {}", w.name());
            }
            Ok(())
        }
        "eval" => cmd_eval(&parsed),
        "run" => cmd_run(&parsed),
        "bench" => cmd_bench(&parsed),
        "profile" => cmd_profile(&parsed),
        "optimize" => cmd_optimize(&parsed),
        "inspect" => cmd_inspect(&parsed),
        "pagemap" => cmd_pagemap(&parsed),
        "heapstats" => cmd_heapstats(&parsed),
        "overhead" => cmd_overhead(&parsed),
        "lint" => cmd_lint(&parsed),
        "cache" => cmd_cache(&parsed),
        other => Err(ArgError(format!("unknown command {other}; try `nimage help`")).into()),
    }
}

fn pipeline_for(workload: &Workload) -> BuildOptions {
    BuildOptions {
        vm: VmConfig {
            dump_mode: workload.dump_mode(),
            ..VmConfig::default()
        },
        ..BuildOptions::default()
    }
}

/// Resolves `--verify` / `--no-verify`: an explicit flag wins; otherwise
/// the nimage-verify checkers default on in debug builds and off in
/// release builds (they roughly double pipeline cost).
fn verify_flag(parsed: &ParsedArgs) -> bool {
    if parsed.has_flag("no-verify") {
        false
    } else if parsed.has_flag("verify") {
        true
    } else {
        cfg!(debug_assertions)
    }
}

/// Parses `--threads N` (0 = auto).
fn threads_of(parsed: &ParsedArgs) -> Result<usize, ArgError> {
    parsed
        .option("threads")
        .map(str::parse)
        .transpose()
        .map_err(|_| ArgError("--threads must be a number".into()))
        .map(|t| t.unwrap_or(0))
}

/// Parses an optional non-negative integer option such as `--max-bytes`.
fn parse_u64(parsed: &ParsedArgs, name: &str) -> Result<Option<u64>, ArgError> {
    parsed
        .option(name)
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| ArgError(format!("--{name} must be a non-negative integer")))
        })
        .transpose()
}

/// Resolves the disk-cache tier: `--no-disk-cache` disables it,
/// `--cache-dir DIR` relocates it, otherwise the per-user default
/// (`$XDG_CACHE_HOME/nimage`, else `~/.cache/nimage`) is used.
/// `--max-bytes` / `--max-entries` cap it (the engine sweeps the cache
/// after runs that stored new entries).
fn disk_of(parsed: &ParsedArgs) -> Result<Option<DiskCacheOptions>, ArgError> {
    if parsed.has_flag("no-disk-cache") {
        return Ok(None);
    }
    let opts = match parsed.option("cache-dir") {
        Some(dir) => Some(DiskCacheOptions::at(dir)),
        None => DiskCacheOptions::default_dir().map(DiskCacheOptions::at),
    };
    let Some(mut opts) = opts else {
        return Ok(None);
    };
    opts.max_bytes = parse_u64(parsed, "max-bytes")?;
    opts.max_entries = parse_u64(parsed, "max-entries")?;
    Ok(Some(opts))
}

fn cmd_eval(parsed: &ParsedArgs) -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::resolve(parsed.one_positional("workload")?)?;
    let strategies: Vec<Strategy> = match parsed.option("strategy") {
        Some(s) if !parsed.has_flag("all") => vec![strategy_of(s)?],
        _ => Strategy::all().to_vec(),
    };
    let program = workload.program()?;
    let mut opts = pipeline_for(&workload);
    opts.verify = verify_flag(parsed);
    opts.salted_heap_ids = parsed.has_flag("salted-heap-ids");
    let engine = Engine::new(EngineOptions {
        n_threads: threads_of(parsed)?,
        disk: disk_of(parsed)?,
        trace: Default::default(),
    });
    eprintln!("profiling {} …", workload.name());
    let req = EvalRequest::new()
        .workload(WorkloadSpec::new(
            workload.name(),
            &program,
            opts,
            workload.stop(),
        ))
        .strategies(strategies);
    let outcome = engine.evaluate(&req)?;
    let cm = CostModel::ssd();
    println!(
        "{:<16} {:>12} {:>12} {:>10} {:>9}",
        "strategy", "base faults", "opt faults", "reduction", "speedup"
    );
    for cell in &outcome.cells {
        let eval = &cell.eval;
        println!(
            "{:<16} {:>12} {:>12} {:>9.2}x {:>8.2}x",
            cell.strategy.name(),
            eval.baseline.faults.total(),
            eval.optimized.faults.total(),
            eval.reported_fault_reduction(),
            eval.speedup(&cm),
        );
    }
    let stats = engine.stats();
    eprintln!(
        "cache: {} hits, {} misses",
        stats.cache_hits(),
        stats.cache_misses()
    );
    if let Some(disk) = &stats.disk {
        eprintln!(
            "disk cache: {} hits, {} misses, {} stores, {} rejected",
            disk.hits, disk.misses, disk.stores, disk.rejected
        );
        print_disk_stages(&stats);
    }
    Ok(())
}

/// Prints the per-stage disk-cache breakdown (stderr, one line per stage).
fn print_disk_stages(stats: &nimage_core::EngineStats) {
    let Some(stages) = &stats.disk_stages else {
        return;
    };
    for (name, s) in stages {
        eprintln!(
            "  disk {:<10}: {} hits, {} misses, {} stores, {} rejected",
            name, s.hits, s.misses, s.stores, s.rejected
        );
    }
}

fn cmd_run(parsed: &ParsedArgs) -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::resolve(parsed.one_positional("workload")?)?;
    let strategy = parsed.option("strategy").map(strategy_of).transpose()?;
    let program = workload.program()?;
    let mut opts = pipeline_for(&workload);
    opts.verify = verify_flag(parsed);
    opts.salted_heap_ids = parsed.has_flag("salted-heap-ids");
    opts.threads = Parallelism::threads(threads_of(parsed)?);
    let pipeline = Pipeline::new(&program, opts);
    let built = match strategy {
        Some(_) => {
            eprintln!("profiling {} …", workload.name());
            let artifacts = pipeline.profiling_run(workload.stop())?;
            pipeline.build_optimized(&artifacts, strategy)?
        }
        None => pipeline.build_instrumented(nimage_compiler::InstrumentConfig::NONE)?,
    };
    let report = pipeline.run_image(&built, workload.stop())?;
    let cm = CostModel::ssd();
    println!(
        "{} ({} layout):",
        workload.name(),
        strategy.map_or("regular", |s| s.name())
    );
    println!("  exit          : {:?}", report.exit);
    println!("  entry return  : {:?}", report.entry_return);
    println!("  ops           : {}", report.ops);
    println!(
        "  faults        : {} .text + {} .svm_heap = {}",
        report.faults.text,
        report.faults.svm_heap,
        report.faults.total()
    );
    println!(
        "  startup (ssd) : {:.3} ms",
        report.time_ns(&cm) / 1_000_000.0
    );
    if let Some(t) = report.time_to_first_response_ns(&cm) {
        println!("  first response: {:.3} ms", t / 1_000_000.0);
    }
    Ok(())
}

fn cmd_bench(parsed: &ParsedArgs) -> Result<(), Box<dyn std::error::Error>> {
    let workload = match parsed.positional.as_slice() {
        [] => Workload::resolve("Bounce")?,
        [one] => Workload::resolve(one)?,
        _ => return Err(ArgError("expected at most one workload".into()).into()),
    };
    let strategies = Strategy::all();
    let program = workload.program()?;
    // Verification stays off unless asked for — this command measures the
    // evaluation path itself.
    let mut opts = pipeline_for(&workload);
    opts.verify = parsed.has_flag("verify");
    let stop = workload.stop();

    // Reference: the serial uncached loop — profile once, then every
    // strategy end to end on one thread, each rebuilding and re-measuring
    // the baseline (what per-strategy evaluation costs without the shared
    // artifact cache).
    eprintln!("benchmarking {} (serial uncached) …", workload.name());
    let t0 = Instant::now();
    let pipeline = Pipeline::new(&program, opts.clone());
    let artifacts = pipeline.profiling_run(stop)?;
    let mut serial: Vec<(Strategy, Evaluation)> = Vec::new();
    for s in strategies {
        let base = pipeline.baseline(&artifacts, stop)?;
        serial.push((
            s,
            pipeline.evaluate_strategy(
                EvalInputs {
                    artifacts: &artifacts,
                    baseline: &base,
                },
                s,
                stop,
            )?,
        ));
    }
    let serial_ns = t0.elapsed().as_nanos() as u64;

    // The engine: shared artifact cache + worker threads + disk tier.
    // VM-level trace events (page faults, shard faults) are recorded only
    // when the Chrome trace is actually exported (or --trace-events asks
    // for them) — they are the one recording that scales with executed
    // work.
    eprintln!("benchmarking {} (engine) …", workload.name());
    let trace_out = parsed.option("trace-out");
    let engine = Engine::new(EngineOptions {
        n_threads: threads_of(parsed)?,
        disk: disk_of(parsed)?,
        trace: TraceOptions {
            vm_events: trace_out.is_some() || parsed.has_flag("trace-events"),
            ..Default::default()
        },
    });
    let t1 = Instant::now();
    let spec = WorkloadSpec::new(workload.name(), &program, opts, stop);
    let req = EvalRequest::new()
        .workload(spec.clone())
        .strategies(strategies);
    let outcome = engine.evaluate(&req)?;
    let engine_ns = t1.elapsed().as_nanos() as u64;
    let rows: Vec<(Strategy, &Evaluation)> = outcome
        .cells
        .iter()
        .map(|c| (c.strategy, &c.eval))
        .collect();

    let results_match = serial.len() == rows.len()
        && serial.iter().zip(&rows).all(|((s1, e1), (s2, e2))| {
            s1 == s2
                && e1.baseline.faults == e2.baseline.faults
                && e1.optimized.faults == e2.optimized.faults
                && e1.baseline.ops == e2.baseline.ops
                && e1.optimized.ops == e2.optimized.ops
                && e1.optimized.entry_return == e2.optimized.entry_return
        });
    let stats = engine.stats();
    let speedup = serial_ns as f64 / engine_ns.max(1) as f64;

    // Tentpole measurement: each parallel stage timed on one thread vs
    // the requested worker count, with bit-identity checked on the merged
    // artifacts.
    let n_workers = Parallelism::threads(threads_of(parsed)?).effective();
    eprintln!(
        "benchmarking {} (per-stage, 1 vs {n_workers} threads) …",
        workload.name()
    );
    let stages = stage_speedups(&program, &workload, stop, n_workers)?;
    let stages_identical = stages.iter().all(|s| s.identical);

    // ROADMAP follow-up: does per-type salting of heap-path identities pay
    // off? Quantified as the fraction of optimized-build objects whose id
    // matches the instrumented build unambiguously.
    let ratios = matched_ratio_rows(&program, &workload)?;

    // Per-strategy measured major faults against the no-reorder baseline,
    // with the layout optimizer's predictions for the clustered
    // strategies (everything below is a cache hit after the engine run).
    let engine_artifacts = engine.profile_workload(&spec)?;
    let fault_rows: Vec<FaultRow> = rows
        .iter()
        .map(|(s, e)| {
            let plan = engine.layout_plan(&spec, &engine_artifacts, *s)?;
            Ok(FaultRow {
                strategy: *s,
                text: e.optimized.faults.text,
                heap: e.optimized.faults.svm_heap,
                predicted: plan.and_then(|p| p.predicted),
            })
        })
        .collect::<Result<_, nimage_core::PipelineError>>()?;
    let baseline_faults = rows
        .first()
        .map(|(_, e)| (e.baseline.faults.text, e.baseline.faults.svm_heap))
        .unwrap_or((0, 0));

    eprintln!("{} × {} strategies:", workload.name(), strategies.len());
    eprintln!("  serial uncached : {:>10.1} ms", serial_ns as f64 / 1e6);
    eprintln!(
        "  engine          : {:>10.1} ms  ({speedup:.2}x)",
        engine_ns as f64 / 1e6
    );
    eprintln!(
        "  cache           : {} hits, {} misses",
        stats.cache_hits(),
        stats.cache_misses()
    );
    if let Some(disk) = &stats.disk {
        eprintln!(
            "  disk cache      : {} hits, {} misses, {} stores, {} rejected",
            disk.hits, disk.misses, disk.stores, disk.rejected
        );
        if let Some(stages) = &stats.disk_stages {
            for (name, s) in stages {
                eprintln!(
                    "    disk {:<9}: {} hits, {} misses, {} stores, {} rejected",
                    name, s.hits, s.misses, s.stores, s.rejected
                );
            }
        }
    }
    for (name, ns) in stats.stages.iter() {
        eprintln!("    {name:<9} {:>10.1} ms", ns as f64 / 1e6);
    }
    eprintln!("  stage speedups (1 → {n_workers} threads):");
    for s in &stages {
        eprintln!(
            "    {:<9} {:>8.1} ms → {:>8.1} ms  ({:.2}x, {}{})",
            s.name,
            s.serial_ns as f64 / 1e6,
            s.parallel_ns as f64 / 1e6,
            s.speedup(),
            if s.identical { "identical" } else { "DIFFER" },
            if s.engaged { "" } else { ", serial cutoff" }
        );
    }
    eprintln!("  matched-object ratio (instrumented → optimized):");
    for (name, r) in &ratios {
        eprintln!("    {name:<17} {r:.4}");
    }
    eprintln!("  measured major faults (text/heap/total):");
    eprintln!(
        "    {:<22} {:>5} {:>5} {:>6}",
        "baseline (no reorder)",
        baseline_faults.0,
        baseline_faults.1,
        baseline_faults.0 + baseline_faults.1
    );
    for row in &fault_rows {
        let predicted = row.predicted.map_or(String::new(), |p| {
            format!(
                "  (predicted {}, first-touch {})",
                p.optimized.total(),
                p.first_touch.total()
            )
        });
        eprintln!(
            "    {:<22} {:>5} {:>5} {:>6}{predicted}",
            row.strategy.name(),
            row.text,
            row.heap,
            row.text + row.heap
        );
    }
    eprintln!(
        "  results         : {}",
        if results_match && stages_identical {
            "identical"
        } else {
            "DIFFER"
        }
    );

    // Snapshot the versioned report last, so the span tree and counters
    // cover everything the bench measured (including the per-strategy
    // layout plans above).
    if parsed.option("json").is_some() || parsed.has_flag("json") {
        let report = engine.report(&req, &outcome.cells);
        let json = bench_json(
            workload.name(),
            strategies.len(),
            engine.stats(),
            serial_ns,
            engine_ns,
            results_match,
            n_workers,
            &stages,
            &ratios,
            baseline_faults,
            &fault_rows,
            &report,
        );
        match parsed.option("json") {
            // `--json FILE` writes the file; bare `--json` or `--json -`
            // prints the report to stdout, which carries nothing else.
            Some(path) if path != "-" => {
                std::fs::write(path, json)?;
                eprintln!("wrote {path}");
            }
            _ => print!("{json}"),
        }
    }
    if let Some(path) = trace_out {
        std::fs::write(path, engine.chrome_trace())?;
        eprintln!("wrote {path}");
    }
    if !results_match {
        return Err("engine results differ from the serial loop".into());
    }
    if !stages_identical {
        return Err("a parallel stage differs from its serial run".into());
    }
    Ok(())
}

/// One strategy's measured major-fault counts (plus, for the clustered
/// strategies, the layout optimizer's predicted counts).
struct FaultRow {
    strategy: Strategy,
    text: u64,
    heap: u64,
    predicted: Option<nimage_core::LayoutPrediction>,
}

/// One row of the per-stage serial-vs-parallel comparison.
struct StageBench {
    name: &'static str,
    serial_ns: u64,
    parallel_ns: u64,
    /// Whether the parallel artifact is bit-identical to the serial one.
    identical: bool,
    /// Whether the stage's fan-out actually engaged at the measured
    /// thread count — its work size reached the stage's
    /// `nimage_par::cutoff` threshold. Below the cutoff the "parallel"
    /// configuration takes the serial code path by construction, so the
    /// row reports `serial_ns` for both arms (speedup exactly 1.0)
    /// instead of re-measuring the identical code and reporting noise.
    engaged: bool,
}

impl StageBench {
    fn speedup(&self) -> f64 {
        self.serial_ns as f64 / self.parallel_ns.max(1) as f64
    }

    /// Collapses a non-engaged row to speedup 1.0 (see [`StageBench::engaged`]).
    fn normalized(mut self) -> StageBench {
        if !self.engaged {
            self.parallel_ns = self.serial_ns;
        }
        self
    }
}

/// Times `compile_stage`, `snapshot_stage`, `post_process` (trace replay)
/// and the measured VM runs on one thread and on `n_workers` threads,
/// asserting the merged results are identical.
fn stage_speedups(
    program: &nimage_ir::Program,
    workload: &Workload,
    stop: nimage_vm::StopWhen,
    n_workers: usize,
) -> Result<Vec<StageBench>, Box<dyn std::error::Error>> {
    use std::sync::Arc;

    let mut serial_opts = pipeline_for(workload);
    serial_opts.verify = false;
    let mut par_opts = serial_opts.clone();
    par_opts.threads = Parallelism::threads(n_workers);
    let ps = Pipeline::new(program, serial_opts.clone());
    let pp = Pipeline::new(program, par_opts);
    let instr = nimage_compiler::InstrumentConfig::FULL;
    let mut out = Vec::new();

    let reach = ps.analyze_stage();
    // A stage is "engaged" when the parallel arm actually ran with more
    // than one worker: cutoff-gated on the work size and capped at the
    // host's parallelism, exactly as `workers_for` resolves it inside
    // the stage.
    let engaged =
        |work: usize, min_work: usize| nimage_par::workers_for(n_workers, work, min_work) > 1;
    let compile_engaged = engaged(
        nimage_compiler::initial_roots(program, &reach).len(),
        nimage_par::cutoff::COMPILE_MIN_ROOTS,
    );
    let t = Instant::now();
    let cs = ps.compile_stage(reach.clone(), instr, None);
    let compile_serial = t.elapsed().as_nanos() as u64;
    let t = Instant::now();
    let cp = pp.compile_stage(reach.clone(), instr, None);
    let compile_parallel = t.elapsed().as_nanos() as u64;
    out.push(
        StageBench {
            name: "compile",
            serial_ns: compile_serial,
            parallel_ns: compile_parallel,
            identical: format!("{:?}", cs.cus) == format!("{:?}", cp.cus),
            engaged: compile_engaged,
        }
        .normalized(),
    );

    let t = Instant::now();
    let ss = ps.snapshot_stage(&cs, &serial_opts.heap_instrumented)?;
    let snap_serial = t.elapsed().as_nanos() as u64;
    let t = Instant::now();
    let sp = pp.snapshot_stage(&cs, &serial_opts.heap_instrumented)?;
    let snap_parallel = t.elapsed().as_nanos() as u64;
    let snap_roots: usize = ss.stats().roots.iter().sum();
    out.push(
        StageBench {
            name: "snapshot",
            serial_ns: snap_serial,
            parallel_ns: snap_parallel,
            identical: format!("{:?}", ss.entries()) == format!("{:?}", sp.entries()),
            engaged: engaged(snap_roots, nimage_par::cutoff::SNAPSHOT_MIN_ROOTS),
        }
        .normalized(),
    );

    // Replay needs a trace: build and run the instrumented image once,
    // then post-process the same report serially and in parallel.
    let image = ps.layout_stage(&cs, &ss, LayoutOrders::default(), None)?;
    let report = ps.run_parts(&cs, &ss, &image, None, stop)?;
    let trace_records: usize = report
        .trace
        .as_ref()
        .map_or(0, |t| t.threads.iter().map(Vec::len).sum());
    let t = Instant::now();
    let a = ps.post_process(report.clone(), &mut |hs| {
        Arc::new(nimage_order::assign_ids(program, &ss, hs))
    })?;
    let replay_serial = t.elapsed().as_nanos() as u64;
    let t = Instant::now();
    let b = pp.post_process(report, &mut |hs| {
        Arc::new(nimage_order::assign_ids(program, &ss, hs))
    })?;
    let replay_parallel = t.elapsed().as_nanos() as u64;
    out.push(
        StageBench {
            name: "replay",
            serial_ns: replay_serial,
            parallel_ns: replay_parallel,
            identical: a.cu_profile == b.cu_profile
                && a.method_profile == b.method_profile
                && a.heap_profiles == b.heap_profiles,
            engaged: engaged(trace_records, nimage_par::cutoff::REPLAY_MIN_RECORDS),
        }
        .normalized(),
    );

    // The measured VM runs: one evaluation of this workload runs the
    // uninstrumented build once per strategy plus the baseline. Serial
    // reference runs them one after another; the sharded arm fans the
    // same runs out over `parallel_map`, sharing the pre-lowered program
    // and the materialized snapshot heap via `Arc` exactly like
    // `Engine::evaluate_matrix` does across cells.
    let n_runs = Strategy::all().len();
    let cn = ps.compile_stage(reach, nimage_compiler::InstrumentConfig::NONE, None);
    let sn = ps.snapshot_stage(&cn, &serial_opts.heap_optimized)?;
    let img = ps.layout_stage(&cn, &sn, LayoutOrders::default(), None)?;
    let template = Arc::new(nimage_vm::HeapTemplate::from_build_heap(sn.heap()));
    let lowered = Arc::new(nimage_vm::LoweredProgram::build(
        program,
        &cn,
        serial_opts.vm.max_paths,
    ));
    let run_one = |p: &Pipeline<'_>| {
        p.run(
            RunParts::new(&cn, &sn, &img)
                .heap(Some(template.clone()))
                .lowered(Some(lowered.clone())),
            stop,
        )
    };
    let t = Instant::now();
    let mut serial_runs = Vec::with_capacity(n_runs);
    for _ in 0..n_runs {
        serial_runs.push(run_one(&ps)?);
    }
    let run_serial = t.elapsed().as_nanos() as u64;
    let t = Instant::now();
    let run_workers = nimage_par::workers_for(n_workers, n_runs, nimage_par::cutoff::RUN_MIN_CELLS);
    let par_runs = nimage_par::parallel_map(run_workers, n_runs, |_| run_one(&pp));
    let run_parallel = t.elapsed().as_nanos() as u64;
    let mut runs_identical = true;
    for (s, p) in serial_runs.iter().zip(&par_runs) {
        match p {
            Ok(p) => runs_identical &= format!("{s:?}") == format!("{p:?}"),
            Err(_) => runs_identical = false,
        }
    }
    out.push(
        StageBench {
            name: "run",
            serial_ns: run_serial,
            parallel_ns: run_parallel,
            identical: runs_identical,
            engaged: run_workers > 1,
        }
        .normalized(),
    );
    Ok(out)
}

/// Computes the matched-object ratio between the instrumented and the
/// optimized snapshot for the plain and the salted heap-path strategy —
/// the measurement behind the ROADMAP's `--salted-heap-ids` question. The
/// two snapshots differ exactly the way the evaluation pipeline's do
/// (different clinit seed, PEA folding only on the optimized side), so
/// the ratio reflects the real cross-build matching problem.
fn matched_ratio_rows(
    program: &nimage_ir::Program,
    workload: &Workload,
) -> Result<Vec<(&'static str, f64)>, Box<dyn std::error::Error>> {
    use nimage_order::{assign_ids, matched_object_ratio, HeapStrategy};
    let mut opts = pipeline_for(workload);
    opts.verify = false;
    let ps = Pipeline::new(program, opts.clone());
    let reach = ps.analyze_stage();
    let cs = ps.compile_stage(reach, nimage_compiler::InstrumentConfig::NONE, None);
    let instr_snap = ps.snapshot_stage(&cs, &opts.heap_instrumented)?;
    let opt_snap = ps.snapshot_stage(&cs, &opts.heap_optimized)?;
    let mut rows = Vec::new();
    for (name, hs) in [
        ("heap-path", HeapStrategy::HeapPath),
        ("heap-path-salted", HeapStrategy::HeapPathSalted),
    ] {
        let a: Vec<u64> = assign_ids(program, &instr_snap, hs).into_values().collect();
        let b: Vec<u64> = assign_ids(program, &opt_snap, hs).into_values().collect();
        rows.push((name, matched_object_ratio(&a, &b)));
    }
    Ok(rows)
}

/// Renders the `nimage bench` report as JSON (no serde in the workspace —
/// the schema is flat and hand-written).
#[allow(clippy::too_many_arguments)]
fn bench_json(
    workload: &str,
    n_strategies: usize,
    stats: nimage_core::EngineStats,
    serial_ns: u64,
    engine_ns: u64,
    results_match: bool,
    n_workers: usize,
    stage_benches: &[StageBench],
    matched_ratios: &[(&'static str, f64)],
    baseline_faults: (u64, u64),
    fault_rows: &[FaultRow],
    report: &Report,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"report_version\": {},\n",
        report.report_version
    ));
    out.push_str(&format!("  \"workload\": \"{workload}\",\n"));
    out.push_str(&format!("  \"strategies\": {n_strategies},\n"));
    out.push_str(&format!("  \"threads\": {n_workers},\n"));
    out.push_str(&format!("  \"serial_uncached_ns\": {serial_ns},\n"));
    out.push_str(&format!("  \"engine_ns\": {engine_ns},\n"));
    out.push_str(&format!(
        "  \"speedup\": {:.4},\n",
        serial_ns as f64 / engine_ns.max(1) as f64
    ));
    out.push_str(&format!("  \"results_match\": {results_match},\n"));
    out.push_str("  \"stage_speedups\": {\n");
    let rows: Vec<String> = stage_benches
        .iter()
        .map(|s| {
            format!(
                "    \"{}\": {{\"serial_ns\": {}, \"parallel_ns\": {}, \"speedup\": {:.4}, \"identical\": {}, \"engaged\": {}}}",
                s.name,
                s.serial_ns,
                s.parallel_ns,
                s.speedup(),
                s.identical,
                s.engaged
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  },\n");
    match &stats.disk {
        Some(d) => out.push_str(&format!(
            "  \"disk_cache\": {{\"hits\": {}, \"misses\": {}, \"stores\": {}, \"rejected\": {}}},\n",
            d.hits, d.misses, d.stores, d.rejected
        )),
        None => out.push_str("  \"disk_cache\": null,\n"),
    }
    match &stats.disk_stages {
        Some(stages) if !stages.is_empty() => {
            out.push_str("  \"disk_stages\": {\n");
            let rows: Vec<String> = stages
                .iter()
                .map(|(name, s)| {
                    format!(
                        "    \"{name}\": {{\"hits\": {}, \"misses\": {}, \"stores\": {}, \"rejected\": {}}}",
                        s.hits, s.misses, s.stores, s.rejected
                    )
                })
                .collect();
            out.push_str(&rows.join(",\n"));
            out.push_str("\n  },\n");
        }
        _ => out.push_str("  \"disk_stages\": null,\n"),
    }
    out.push_str(&format!(
        "  \"lowered_shards\": {{\"lazy\": {}, \"eager\": {}, \"cus\": {}}},\n",
        stats.lowered_shards.lazy, stats.lowered_shards.eager, stats.lowered_shards.cus
    ));
    out.push_str("  \"stages_ns\": {\n");
    let stages: Vec<String> = stats
        .stages
        .iter()
        .map(|(name, ns)| format!("    \"{name}\": {ns}"))
        .collect();
    out.push_str(&stages.join(",\n"));
    out.push_str("\n  },\n");
    out.push_str("  \"faults\": {\n");
    out.push_str(&format!(
        "    \"baseline\": {{\"text\": {}, \"heap\": {}, \"total\": {}}},\n",
        baseline_faults.0,
        baseline_faults.1,
        baseline_faults.0 + baseline_faults.1
    ));
    out.push_str("    \"strategies\": {\n");
    let fault_lines: Vec<String> = fault_rows
        .iter()
        .map(|row| {
            let mut line = format!(
                "      \"{}\": {{\"text\": {}, \"heap\": {}, \"total\": {}",
                row.strategy.name(),
                row.text,
                row.heap,
                row.text + row.heap
            );
            if let Some(p) = row.predicted {
                line.push_str(&format!(
                    ", \"predicted\": {{\"text\": {}, \"heap\": {}, \"total\": {}}}, \"first_touch_predicted\": {{\"text\": {}, \"heap\": {}, \"total\": {}}}",
                    p.optimized.text,
                    p.optimized.heap,
                    p.optimized.total(),
                    p.first_touch.text,
                    p.first_touch.heap,
                    p.first_touch.total()
                ));
            }
            line.push('}');
            line
        })
        .collect();
    out.push_str(&fault_lines.join(",\n"));
    out.push_str("\n    }\n  },\n");
    out.push_str("  \"matched_object_ratio\": {");
    let ratio_rows: Vec<String> = matched_ratios
        .iter()
        .map(|(name, r)| format!("\"{name}\": {r:.6}"))
        .collect();
    out.push_str(&ratio_rows.join(", "));
    out.push_str("},\n");
    out.push_str(&format!("  \"cache_hits\": {},\n", stats.cache_hits()));
    out.push_str(&format!("  \"cache_misses\": {},\n", stats.cache_misses()));
    out.push_str("  \"cache\": [\n");
    let memos: Vec<String> = stats
        .cache
        .iter()
        .map(|m| {
            format!(
                "    {{\"stage\": \"{}\", \"hits\": {}, \"misses\": {}}}",
                m.name, m.hits, m.misses
            )
        })
        .collect();
    out.push_str(&memos.join(",\n"));
    out.push_str("\n  ],\n");
    // The versioned engine report, verbatim — the schema the CI gate
    // validates (stage spans, metrics counters, trace totals, cells).
    out.push_str(&format!("  \"report\": {}\n}}\n", report.to_json()));
    out
}

fn cmd_profile(parsed: &ParsedArgs) -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::resolve(parsed.one_positional("workload")?)?;
    let out = Path::new(parsed.require("out")?);
    let program = workload.program()?;
    let pipeline = Pipeline::new(&program, pipeline_for(&workload));
    eprintln!("profiling {} …", workload.name());
    let artifacts = pipeline.profiling_run(workload.stop())?;
    save_profiles(&artifacts, out)?;
    if let Some(trace) = &artifacts.instrumented_report.trace {
        std::fs::write(out.join("trace.ntrc"), write_trace(trace))?;
    }
    println!(
        "wrote profiles to {} ({} CU entries, {} methods, {} heap ids)",
        out.display(),
        artifacts.cu_profile.sigs.len(),
        artifacts.method_profile.sigs.len(),
        artifacts.heap_profiles[&nimage_order::HeapStrategy::HeapPath]
            .ids
            .len(),
    );
    Ok(())
}

fn cmd_optimize(parsed: &ParsedArgs) -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::resolve(parsed.one_positional("workload")?)?;
    let profiles_dir = Path::new(parsed.require("profiles")?);
    let strategy = strategy_of(parsed.require("strategy")?)?;
    let out = Path::new(parsed.require("out")?);

    let program = workload.program()?;
    let pipeline = Pipeline::new(&program, pipeline_for(&workload));
    let saved = load_profiles(profiles_dir)?;
    // The optimizing build does not need the instrumented report; rerun a
    // cheap uninstrumented run to fill the slot.
    let regular = pipeline.build_instrumented(nimage_compiler::InstrumentConfig::NONE)?;
    let report = pipeline.run_image(&regular, workload.stop())?;
    let artifacts = saved.into_artifacts(report);
    let built = pipeline.build_optimized(&artifacts, Some(strategy))?;
    std::fs::write(out, nimage_image::write_image_file(&built.image))?;
    println!(
        "wrote {} ({} CUs, {} objects, {} KiB image)",
        out.display(),
        built.image.cu_order.len(),
        built.image.object_order.len(),
        built.image.total_size / 1024,
    );
    Ok(())
}

fn cmd_inspect(parsed: &ParsedArgs) -> Result<(), Box<dyn std::error::Error>> {
    let path = parsed.one_positional("image file")?;
    let bytes = std::fs::read(path)?;
    let file = nimage_image::read_image_file(&bytes)?;
    println!("nimage binary image v{}", file.version);
    println!("  page size : {} B", file.page_size);
    println!(
        "  .text     : offset {:#x}, {} KiB",
        file.text.0,
        file.text.1 / 1024
    );
    println!(
        "  .svm_heap : offset {:#x}, {} KiB",
        file.svm_heap.0,
        file.svm_heap.1 / 1024
    );
    println!("  CUs       : {}", file.cus.len());
    for &(id, off) in file.cus.iter().take(10) {
        println!("    cu{id:<6} @ {off:#x}");
    }
    if file.cus.len() > 10 {
        println!("    … {} more", file.cus.len() - 10);
    }
    println!("  objects   : {}", file.objects.len());
    Ok(())
}

fn cmd_pagemap(parsed: &ParsedArgs) -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::resolve(parsed.one_positional("workload")?)?;
    let width: usize = parsed
        .option("width")
        .map(str::parse)
        .transpose()
        .map_err(|_| ArgError("--width must be a number".into()))?
        .unwrap_or(64);
    let strategy = parsed.option("strategy").map(strategy_of).transpose()?;
    let program = workload.program()?;
    let pipeline = Pipeline::new(&program, pipeline_for(&workload));
    eprintln!("profiling {} …", workload.name());
    let artifacts = pipeline.profiling_run(workload.stop())?;
    let built = pipeline.build_optimized(&artifacts, strategy)?;
    let report = pipeline.run_image(&built, workload.stop())?;
    for (name, states) in [
        (".text", &report.text_page_states),
        (".svm_heap", &report.heap_page_states),
    ] {
        let s = summarize(states);
        println!(
            "\n{name} — {} layout ({} faulted, {} resident, {} untouched):",
            strategy.map_or("regular", |s| s.name()),
            s.faulted,
            s.resident,
            s.untouched
        );
        println!("{}", render_ascii(states, width));
    }
    Ok(())
}

fn cmd_heapstats(parsed: &ParsedArgs) -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::resolve(parsed.one_positional("workload")?)?;
    let program = workload.program()?;
    let pipeline = Pipeline::new(&program, pipeline_for(&workload));
    eprintln!("profiling {} …", workload.name());
    let artifacts = pipeline.profiling_run(workload.stop())?;
    let built = pipeline.build_instrumented(nimage_compiler::InstrumentConfig::FULL)?;
    let snap = &built.snapshot;

    let stats = snap.stats();
    println!(
        ".svm_heap composition ({} objects, {} KiB):",
        stats.objects(),
        stats.bytes() / 1024
    );
    for (name, (count, bytes)) in [
        ("instances", stats.instances),
        ("arrays", stats.arrays),
        ("strings", stats.strings),
        ("boxed consts", stats.boxed),
        ("resources", stats.blobs),
    ] {
        println!(
            "  {name:<13} {count:>6} objects {:>8} KiB ({:>4.1}% of bytes)",
            bytes / 1024,
            100.0 * bytes as f64 / stats.bytes().max(1) as f64
        );
    }
    println!(
        "roots: {} static-field, {} method-constant, {} interned-string, {} data-section, {} resource",
        stats.roots[0], stats.roots[1], stats.roots[2], stats.roots[3], stats.roots[4]
    );

    let trace = artifacts
        .instrumented_report
        .trace
        .as_ref()
        .ok_or("instrumented run produced no trace")?;
    let accessed = accessed_objects(trace);
    println!(
        "
accessed at startup: {} of {} objects ({:.1}%)",
        accessed.len(),
        snap.entries().len(),
        100.0 * accessed.len() as f64 / snap.entries().len().max(1) as f64
    );

    let default_order: Vec<nimage_heap::ObjId> = snap.entries().iter().map(|e| e.obj).collect();
    let ids = nimage_order::assign_ids(&program, snap, nimage_order::HeapStrategy::HeapPath);
    let profile = &artifacts.heap_profiles[&nimage_order::HeapStrategy::HeapPath];
    let reordered = nimage_order::order_objects(snap, &ids, profile);
    print!(
        "{}",
        quality_report(
            snap,
            &[("default", &default_order), ("heap path", &reordered)],
            &accessed,
        )
    );
    Ok(())
}

/// Accessed-object set from an instrumented trace (raw ids are ObjId + 1;
/// 0 marks accesses to objects outside the snapshot).
fn accessed_objects(
    trace: &nimage_profiler::Trace,
) -> std::collections::HashSet<nimage_heap::ObjId> {
    let mut accessed = std::collections::HashSet::new();
    for t in &trace.threads {
        for rec in t {
            if let nimage_profiler::TraceRecord::Path { obj_ids, .. } = rec {
                for &id in obj_ids {
                    if id != 0 {
                        accessed.insert(nimage_heap::ObjId((id - 1) as u32));
                    }
                }
            }
        }
    }
    accessed
}

/// Renders one `layout_quality` line per named object order.
fn quality_report(
    snap: &nimage_heap::HeapSnapshot,
    orders: &[(&str, &[nimage_heap::ObjId])],
    accessed: &std::collections::HashSet<nimage_heap::ObjId>,
) -> String {
    let mut out = String::new();
    for (name, order) in orders {
        let q = nimage_order::layout_quality(snap, order, accessed);
        out.push_str(&format!(
            "  {name:<12} layout: span {:>6} KiB, density {:>5.1}%, {} runs\n",
            q.span_bytes / 1024,
            q.density * 100.0,
            q.runs
        ));
    }
    out
}

fn cmd_lint(parsed: &ParsedArgs) -> Result<(), Box<dyn std::error::Error>> {
    let strategy = match parsed.option("strategy") {
        Some(s) => strategy_of(s)?,
        None => Strategy::CuPlusHeapPath,
    };
    let text = match parsed.option("format").unwrap_or("text") {
        "text" => true,
        "json" => false,
        other => {
            return Err(ArgError(format!("unknown --format {other}; expected text|json")).into())
        }
    };
    let report = parsed.has_flag("report");
    let workloads: Vec<Workload> = if parsed.has_flag("all") {
        Workload::awfy()
            .chain(Workload::micro())
            .chain(std::iter::once(Workload::Quickstart))
            .collect()
    } else {
        vec![Workload::resolve(parsed.one_positional("workload")?)?]
    };
    // Lint shares the eval engine so expensive stages (compile, snapshot,
    // profile) persist to the disk tier: a second `nimage lint` run loads
    // them back instead of rebuilding.
    let engine = Engine::new(EngineOptions {
        n_threads: threads_of(parsed)?,
        disk: disk_of(parsed)?,
        trace: Default::default(),
    });
    // Unlike run/eval, the in-pipeline checkers default off here — lint
    // already runs the same checkers itself; `--verify` opts in.
    let verify = parsed.has_flag("verify") && !parsed.has_flag("no-verify");
    let mut total_errors = 0;
    let mut outcomes: Vec<(&'static str, LintOutcome)> = Vec::new();
    for workload in &workloads {
        let out = lint_workload(workload, strategy, report, verify, text, &engine)?;
        total_errors += out.errors;
        outcomes.push((workload.name(), out));
    }
    let stats = engine.stats();
    if let Some(disk) = &stats.disk {
        eprintln!(
            "disk cache: {} hits, {} misses, {} stores, {} rejected",
            disk.hits, disk.misses, disk.stores, disk.rejected
        );
        print_disk_stages(&stats);
    }
    if !text {
        print!("{}", lint_json(strategy, &outcomes));
    } else if workloads.len() > 1 {
        println!(
            "\nlint --all: {} workload(s), {} error(s)",
            workloads.len(),
            total_errors
        );
    }
    if total_errors > 0 {
        return Err(format!("{total_errors} verification error(s)").into());
    }
    Ok(())
}

/// The result of linting one workload: normalized (sorted, deduplicated)
/// diagnostics plus per-lint-family wall-clock timings.
struct LintOutcome {
    errors: usize,
    warnings: usize,
    /// `(family, microseconds)` in execution order.
    timings: Vec<(&'static str, u64)>,
    diags: Vec<nimage_verify::Diagnostic>,
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the `nimage lint --format json` report (no serde in the
/// workspace — hand-written like `bench_json`).
fn lint_json(strategy: Strategy, outcomes: &[(&'static str, LintOutcome)]) -> String {
    use nimage_verify::Severity;
    let mut out = String::from("{\n");
    out.push_str("  \"workloads\": [\n");
    let blocks: Vec<String> = outcomes
        .iter()
        .map(|(name, o)| {
            let mut b = String::from("    {\n");
            b.push_str(&format!("      \"workload\": \"{}\",\n", json_escape(name)));
            b.push_str(&format!(
                "      \"strategy\": \"{}\",\n",
                json_escape(strategy.name())
            ));
            b.push_str(&format!("      \"errors\": {},\n", o.errors));
            b.push_str(&format!("      \"warnings\": {},\n", o.warnings));
            b.push_str("      \"timings_us\": {");
            let ts: Vec<String> = o
                .timings
                .iter()
                .map(|(n, us)| format!("\"{n}\": {us}"))
                .collect();
            b.push_str(&ts.join(", "));
            b.push_str("},\n");
            b.push_str("      \"diagnostics\": [\n");
            let ds: Vec<String> = o
                .diags
                .iter()
                .map(|d| {
                    format!(
                        "        {{\"severity\": \"{}\", \"code\": \"{}\", \"entity\": \"{}\", \"message\": \"{}\"}}",
                        if d.severity == Severity::Error { "error" } else { "warning" },
                        json_escape(d.code),
                        json_escape(&d.entity),
                        json_escape(&d.message)
                    )
                })
                .collect();
            b.push_str(&ds.join(",\n"));
            if !o.diags.is_empty() {
                b.push('\n');
            }
            b.push_str("      ]\n    }");
            b
        })
        .collect();
    out.push_str(&blocks.join(",\n"));
    out.push_str("\n  ],\n");
    let errors: usize = outcomes.iter().map(|(_, o)| o.errors).sum();
    let warnings: usize = outcomes.iter().map(|(_, o)| o.warnings).sum();
    out.push_str(&format!("  \"total_errors\": {errors},\n"));
    out.push_str(&format!("  \"total_warnings\": {warnings}\n"));
    out.push_str("}\n");
    out
}

/// Lints one workload end to end; returns the normalized diagnostics and
/// per-lint-family timings. Builds go through `engine` so the
/// compile/snapshot/profile stages hit the shared (and disk) caches. When
/// `text` is false (JSON mode), the informational stdout lines are
/// suppressed so stdout carries only the report.
fn lint_workload(
    workload: &Workload,
    strategy: Strategy,
    report: bool,
    verify: bool,
    text: bool,
    engine: &Engine,
) -> Result<LintOutcome, Box<dyn std::error::Error>> {
    use nimage_verify::{determinism::DeterminismInputs, irlint, pipeline as checks, Severity};

    let program = workload.program()?;
    let mut opts = pipeline_for(workload);
    opts.verify = verify;
    let spec = WorkloadSpec::new(workload.name(), &program, opts.clone(), workload.stop());
    let mut diags = vec![];
    let mut timings: Vec<(&'static str, u64)> = vec![];
    macro_rules! timed {
        ($name:literal, $body:block) => {{
            let t = Instant::now();
            let r = $body;
            timings.push(($name, t.elapsed().as_micros() as u64));
            r
        }};
    }

    // Family 1: IR dataflow lints (use-before-def, dead stores — both on
    // the worklist solver), then vtable soundness against the instrumented
    // build's devirtualization.
    let built = engine.instrumented_parts(&spec)?;
    timed!("ir", {
        diags.extend(irlint::lint_program(&program));
        diags.extend(irlint::lint_virtual_targets(
            &program,
            &built.compiled.reachability,
        ));
    });
    timed!("layout-instrumented", {
        diags.extend(checks::check_layout(&checks::LayoutView::from_image(
            &program,
            &built.compiled,
            &built.snapshot,
            &built.image,
        )));
    });

    // Family 2: profiling-run invariants — trace well-formedness, identity
    // collision audits, profile coverage, layout + matching contract of the
    // optimized build.
    eprintln!("profiling {} …", workload.name());
    let artifacts = engine.profile_workload(&spec)?;
    let trace = artifacts
        .instrumented_report
        .trace
        .as_ref()
        .ok_or("instrumented run produced no trace")?;
    timed!("trace", {
        diags.extend(checks::check_trace(trace));
    });

    timed!("coverage", {
        let coverage = checks::profile_coverage(&program, &built.compiled, &artifacts.cu_profile);
        if text {
            println!(
                "profile coverage   : {}/{} profile signatures resolve, {}/{} CUs covered",
                coverage.matched, coverage.profile_entries, coverage.covered, coverage.cus
            );
        }
        diags.extend(checks::coverage_diagnostics(&coverage));
    });

    timed!("ids", {
        let mut heap_profiles: Vec<_> = artifacts.heap_profiles.iter().collect();
        heap_profiles.sort_by_key(|(hs, _)| hs.name());
        for (hs, profile) in heap_profiles {
            let audit = checks::audit_ids(profile.ids.iter().copied());
            if text {
                println!(
                    "id audit ({:<15}): {} ids, {} distinct, worst multiplicity {}",
                    hs.name(),
                    audit.total,
                    audit.distinct,
                    audit.max_multiplicity
                );
            }
            diags.extend(checks::id_collision_diagnostics(
                &audit,
                &format!("heap profile ({})", hs.name()),
            ));
        }
    });

    let opt = engine.optimized_image(&BuildRequest {
        spec: &spec,
        artifacts: &artifacts,
        strategy: Some(strategy),
    })?;
    timed!("layout-optimized", {
        diags.extend(checks::check_layout(&checks::LayoutView::from_image(
            &program,
            &opt.compiled,
            &opt.snapshot,
            &opt.image,
        )));
    });
    timed!("matching", {
        if let Some(hs) = opts.heap_strategy_for(strategy) {
            let ids = nimage_order::assign_ids(&program, &opt.snapshot, hs);
            diags.extend(checks::id_collision_diagnostics(
                &checks::audit_ids(ids.values().copied()),
                &format!("optimized-build ids ({})", hs.name()),
            ));
            diags.extend(checks::check_matching(
                &opt.snapshot,
                &ids,
                &artifacts.heap_profiles[&hs],
                &opt.image.object_order,
            ));
        }
    });

    // Family 3: determinism audits — the back half of the pipeline, then
    // the profiling build (instrumented compile + trace replay).
    let verdict = |ok: bool| if ok { "identical" } else { "DIFFERS" };
    timed!("determinism", {
        let det = nimage_verify::audit_determinism(
            &program,
            &DeterminismInputs {
                cu_profile: Some(&artifacts.cu_profile),
                heap_profile: opts
                    .heap_strategy_for(strategy)
                    .map(|hs| &artifacts.heap_profiles[&hs]),
                heap_strategy: opts.heap_strategy_for(strategy),
            },
        );
        if text {
            println!(
                "determinism audit  : image {}, cu order {}, object order {}",
                verdict(det.image_identical),
                verdict(det.cu_order_identical),
                verdict(det.object_order_identical)
            );
        }
        diags.extend(det.diagnostics);
    });

    timed!("profiling-determinism", {
        let audit_program = workload.audit_program()?;
        let prof_det = nimage_verify::audit_profiling_determinism(&audit_program, workload.stop());
        if text {
            println!(
                "profiling audit    : trace {}, profiles {}, parallel replay {}",
                verdict(prof_det.trace_identical),
                verdict(prof_det.profiles_identical),
                verdict(prof_det.parallel_replay_identical)
            );
        }
        diags.extend(prof_det.diagnostics);
    });

    // Family 4: PEA fold soundness — audits the optimized snapshot (the
    // instrumented heap config never folds) by reconstructing the pre-fold
    // object graph and checking every folded object was single-use.
    timed!("pea", {
        diags.extend(nimage_verify::pea::check_pea_soundness(
            &program,
            &opt.snapshot,
        ));
    });

    // Family 5: clinit purity — interprocedural effect summaries classify
    // each build-time initializer, then a logged re-execution cross-checks
    // that the static summaries over-approximate the observed effects.
    timed!("purity", {
        let cg = nimage_analysis::CallGraph::build(&program);
        let summaries = nimage_verify::purity::effect_summaries(&program, &cg);
        let inits =
            nimage_heap::init_order(&program, &built.compiled.reachability, &opts.heap_optimized);
        diags.extend(nimage_verify::purity::check_clinit_purity(
            &program, &inits, &summaries,
        ));
        let (_heap, log) =
            nimage_heap::run_initializers_logged(&program, &inits, opts.heap_optimized.budget)?;
        diags.extend(nimage_verify::purity::check_effect_log(
            &program, &summaries, &log,
        ));
    });

    // Family 6: reachability cross-check — every method the trace entered
    // must be in the type-based reachable set; never-entered CUs are
    // reported as layout waste.
    timed!("reach", {
        diags.extend(nimage_verify::reachcheck::check_reachability(
            &program,
            &built.compiled,
            trace,
        ));
    });

    if text && report {
        let accessed = accessed_objects(trace);
        let default_order: Vec<nimage_heap::ObjId> =
            opt.snapshot.entries().iter().map(|e| e.obj).collect();
        print!(
            "{}",
            quality_report(
                &opt.snapshot,
                &[
                    ("default", &default_order),
                    (strategy.name(), &opt.image.object_order),
                ],
                &accessed,
            )
        );
    }

    // Stable output: sort by (severity, code, entity, message) and drop
    // exact duplicates, so the report is identical across thread counts
    // and cache states.
    nimage_verify::normalize(&mut diags);
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    if text {
        for d in &diags {
            println!("{d}");
        }
        let total_us: u64 = timings.iter().map(|(_, us)| us).sum();
        let parts: Vec<String> = timings
            .iter()
            .map(|(name, us)| format!("{name} {us}µs"))
            .collect();
        println!(
            "lint timings       : {} (total {total_us}µs)",
            parts.join(", ")
        );
        println!(
            "lint {}: {} error(s), {} warning(s)",
            workload.name(),
            errors,
            diags.len() - errors
        );
    }
    Ok(LintOutcome {
        errors,
        warnings: diags.len() - errors,
        timings,
        diags,
    })
}

fn cmd_overhead(parsed: &ParsedArgs) -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::resolve(parsed.one_positional("workload")?)?;
    let program = workload.program()?;
    let pipeline = Pipeline::new(&program, pipeline_for(&workload));
    let modes: [(&str, nimage_compiler::InstrumentConfig); 3] = [
        (
            "cu",
            nimage_compiler::InstrumentConfig {
                trace_cu: true,
                ..nimage_compiler::InstrumentConfig::NONE
            },
        ),
        (
            "method",
            nimage_compiler::InstrumentConfig {
                trace_methods: true,
                ..nimage_compiler::InstrumentConfig::NONE
            },
        ),
        (
            "heap",
            nimage_compiler::InstrumentConfig {
                trace_heap: true,
                ..nimage_compiler::InstrumentConfig::NONE
            },
        ),
    ];
    println!(
        "{} (dump mode {}):",
        workload.name(),
        match workload.dump_mode() {
            DumpMode::OnFull => "1: flush on full/exit",
            DumpMode::MemoryMapped => "2: memory-mapped",
        }
    );
    for (name, cfg) in modes {
        let f = pipeline.profiling_overhead(cfg, workload.stop())?;
        println!("  {name:<8} {f:.2}x");
    }
    Ok(())
}

fn cmd_cache(parsed: &ParsedArgs) -> Result<(), Box<dyn std::error::Error>> {
    let action = parsed.one_positional("cache action (stats, gc or clear)")?;
    let opts = match parsed.option("cache-dir") {
        Some(dir) => DiskCacheOptions::at(dir),
        None => DiskCacheOptions::default_dir()
            .map(DiskCacheOptions::at)
            .ok_or("no default cache directory (set --cache-dir, $XDG_CACHE_HOME or $HOME)")?,
    };
    match action {
        "stats" => {
            let store = DiskStore::open(&opts);
            let u = store.usage();
            println!("cache dir : {}", opts.dir.display());
            println!(
                "format    : v{DISK_FORMAT_VERSION} (under {})",
                store.root().display()
            );
            println!("entries   : {}", u.entries);
            println!("size      : {:.1} KiB", u.bytes as f64 / 1024.0);
            if u.tmp_files > 0 {
                println!(
                    "tmp files : {} leftover ({:.1} KiB; `nimage cache gc` removes stale ones)",
                    u.tmp_files,
                    u.tmp_bytes as f64 / 1024.0
                );
            }
        }
        "gc" => {
            let store = DiskStore::open(&opts);
            let max_bytes = parse_u64(parsed, "max-bytes")?;
            let max_entries = parse_u64(parsed, "max-entries")?;
            let r = store.gc(max_bytes, max_entries);
            println!("cache dir : {}", opts.dir.display());
            println!(
                "evicted   : {} entries ({:.1} KiB)",
                r.evicted_entries,
                r.evicted_bytes as f64 / 1024.0
            );
            println!("stale tmp : {} removed", r.removed_tmp);
            println!(
                "surviving : {} entries ({:.1} KiB)",
                r.surviving_entries,
                r.surviving_bytes as f64 / 1024.0
            );
        }
        "clear" => {
            DiskStore::clear(&opts.dir)?;
            println!("cleared {}", opts.dir.display());
        }
        other => {
            return Err(ArgError(format!(
                "unknown cache action {other}; expected stats, gc or clear"
            ))
            .into())
        }
    }
    Ok(())
}

trait JoinNames {
    fn join(self, sep: &str) -> String;
}

impl<const N: usize> JoinNames for [String; N] {
    fn join(self, sep: &str) -> String {
        self.as_slice().join(sep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_report_smoke() -> Result<(), Box<dyn std::error::Error>> {
        let program = quickstart::program()?;
        let pipeline = Pipeline::new(&program, BuildOptions::default());
        let artifacts = pipeline.profiling_run(nimage_vm::StopWhen::Exit)?;
        let built = pipeline.build_instrumented(nimage_compiler::InstrumentConfig::FULL)?;
        let trace = artifacts
            .instrumented_report
            .trace
            .as_ref()
            .ok_or("instrumented run produced no trace")?;
        let accessed = accessed_objects(trace);
        assert!(!accessed.is_empty(), "startup touches snapshot objects");

        let default_order: Vec<nimage_heap::ObjId> =
            built.snapshot.entries().iter().map(|e| e.obj).collect();
        let report = quality_report(&built.snapshot, &[("default", &default_order)], &accessed);
        assert!(report.contains("default"));
        assert!(report.contains("density"));
        assert!(report.contains("runs"));
        Ok(())
    }
}
