//! Minimal dependency-free argument parsing for the `nimage` CLI.

use std::collections::HashMap;
use std::fmt;

/// A parsed command line: subcommand, positional arguments and `--key
/// value` / `--flag` options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` options.
    pub options: HashMap<String, String>,
    /// Bare `--flag` switches.
    pub flags: Vec<String>,
}

/// A user error in the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// Option keys that take a value; everything else starting with `--` is a
/// boolean flag.
const VALUED: &[&str] = &[
    "strategy",
    "format",
    "out",
    "profiles",
    "width",
    "scale",
    "window",
    "threads",
    "cache-dir",
    "max-bytes",
    "max-entries",
    "trace-out",
];

/// Option keys whose value is optional: `--json FILE` stores a value,
/// a bare `--json` (next token is another `--option`, or nothing)
/// records a flag. `-` is an ordinary value (conventionally stdout).
const OPTIONAL_VALUED: &[&str] = &["json"];

/// Parses `args` (without the program name).
///
/// # Errors
/// Returns [`ArgError`] when a valued option is missing its value or no
/// subcommand is present.
pub fn parse(args: &[String]) -> Result<ParsedArgs, ArgError> {
    let mut parsed = ParsedArgs::default();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if VALUED.contains(&name) {
                let value = it
                    .next()
                    .ok_or_else(|| ArgError(format!("--{name} requires a value")))?;
                parsed.options.insert(name.to_string(), value.clone());
            } else if OPTIONAL_VALUED.contains(&name) {
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        parsed.options.insert(name.to_string(), (*v).clone());
                        it.next();
                    }
                    _ => parsed.flags.push(name.to_string()),
                }
            } else {
                parsed.flags.push(name.to_string());
            }
        } else if parsed.command.is_empty() {
            parsed.command = a.clone();
        } else {
            parsed.positional.push(a.clone());
        }
    }
    if parsed.command.is_empty() {
        return Err(ArgError("missing subcommand; try `nimage help`".into()));
    }
    Ok(parsed)
}

impl ParsedArgs {
    /// The single positional argument, or an error naming what it should be.
    pub fn one_positional(&self, what: &str) -> Result<&str, ArgError> {
        match self.positional.as_slice() {
            [one] => Ok(one),
            [] => Err(ArgError(format!("expected a {what}"))),
            _ => Err(ArgError(format!("expected exactly one {what}"))),
        }
    }

    /// A valued option.
    pub fn option(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// A required valued option.
    pub fn require(&self, name: &str) -> Result<&str, ArgError> {
        self.option(name)
            .ok_or_else(|| ArgError(format!("--{name} is required")))
    }

    /// Whether a boolean flag was passed.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_subcommand_positionals_options_flags() {
        let p = parse(&sv(&["eval", "Bounce", "--strategy", "cu", "--all"])).unwrap();
        assert_eq!(p.command, "eval");
        assert_eq!(p.positional, vec!["Bounce"]);
        assert_eq!(p.option("strategy"), Some("cu"));
        assert!(p.has_flag("all"));
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = parse(&sv(&["profile", "Bounce", "--out"])).unwrap_err();
        assert!(err.to_string().contains("--out"));
    }

    #[test]
    fn missing_subcommand_is_an_error() {
        assert!(parse(&sv(&[])).is_err());
        assert!(parse(&sv(&["--all"])).is_err());
    }

    #[test]
    fn optional_valued_json_takes_file_dash_or_nothing() {
        let p = parse(&sv(&["bench", "Bounce", "--json", "out.json"])).unwrap();
        assert_eq!(p.option("json"), Some("out.json"));
        assert!(!p.has_flag("json"));

        let p = parse(&sv(&["bench", "Bounce", "--json", "-"])).unwrap();
        assert_eq!(p.option("json"), Some("-"));

        let p = parse(&sv(&["bench", "Bounce", "--json"])).unwrap();
        assert_eq!(p.option("json"), None);
        assert!(p.has_flag("json"));

        let p = parse(&sv(&["bench", "Bounce", "--json", "--threads", "2"])).unwrap();
        assert!(p.has_flag("json"));
        assert_eq!(p.option("threads"), Some("2"));
    }

    #[test]
    fn trace_out_requires_a_value() {
        let p = parse(&sv(&["bench", "Bounce", "--trace-out", "t.json"])).unwrap();
        assert_eq!(p.option("trace-out"), Some("t.json"));
        let err = parse(&sv(&["bench", "--trace-out"])).unwrap_err();
        assert!(err.to_string().contains("--trace-out"));
    }

    #[test]
    fn one_positional_validation() {
        let p = parse(&sv(&["eval"])).unwrap();
        assert!(p.one_positional("workload").is_err());
        let p = parse(&sv(&["eval", "a", "b"])).unwrap();
        assert!(p.one_positional("workload").is_err());
        let p = parse(&sv(&["eval", "a"])).unwrap();
        assert_eq!(p.one_positional("workload").unwrap(), "a");
    }
}
