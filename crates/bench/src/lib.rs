//! # nimage-bench
//!
//! The evaluation harness: one bench target per table/figure of the paper
//! (run with `cargo bench`), plus criterion microbenches of the core
//! algorithms.
//!
//! | target | reproduces |
//! |---|---|
//! | `fig2_awfy_pagefaults` | Fig. 2 — page-fault reductions, AWFY |
//! | `fig3_micro_pagefaults` | Fig. 3 — page-fault reductions, microservices |
//! | `fig4_micro_speedups` | Fig. 4 — execution-time speedups, microservices |
//! | `fig5_awfy_speedups` | Fig. 5 — execution-time speedups, AWFY |
//! | `tab_profiling_overhead` | Sec. 7.4 — profiling overhead factors |
//! | `fig6_pagemap` | Fig. 6 — visual `.text` page map, Bounce |
//! | `abl_fault_around` | ablation — fault-around window sweep |
//! | `abl_structural_depth` | ablation — structural-hash `MAX_DEPTH` sweep |
//! | `crit_algorithms` | criterion microbenches of hashing/ordering |

#![warn(missing_docs)]

use nimage_core::{
    BuildOptions, Engine, Evaluation, MatrixCell, Pipeline, ProfiledArtifacts, Strategy,
    WorkloadSpec,
};
use nimage_ir::Program;
use nimage_profiler::DumpMode;
use nimage_vm::{CostModel, StopWhen, VmConfig};
use nimage_workloads::{Awfy, Microservice};

/// The build options used by every headline experiment: paper defaults
/// (4 KiB pages, 16-page fault-around, SSD cost model) with the dump mode
/// chosen per workload class (Sec. 6.1).
pub fn eval_options(dump_mode: DumpMode) -> BuildOptions {
    BuildOptions {
        vm: VmConfig {
            dump_mode,
            ..VmConfig::default()
        },
        ..BuildOptions::default()
    }
}

/// Result rows of one workload's evaluation across all strategies.
#[derive(Debug)]
pub struct WorkloadRows {
    /// Workload display name.
    pub name: String,
    /// `(strategy, evaluation)` in figure order.
    pub rows: Vec<(Strategy, Evaluation)>,
}

/// Runs the full pipeline (profile once, evaluate every strategy) for one
/// program on a transient [`Engine`].
///
/// # Panics
/// Panics if any pipeline stage fails — the harness treats that as a
/// broken experiment.
pub fn evaluate_program(
    name: &str,
    program: &Program,
    stop: StopWhen,
    dump_mode: DumpMode,
) -> WorkloadRows {
    evaluate_program_with(&Engine::default(), name, program, stop, dump_mode)
}

/// [`evaluate_program`] on a caller-provided [`Engine`], sharing its
/// artifact cache (and worker pool) across calls.
///
/// # Panics
/// Panics if any pipeline stage fails.
pub fn evaluate_program_with(
    engine: &Engine,
    name: &str,
    program: &Program,
    stop: StopWhen,
    dump_mode: DumpMode,
) -> WorkloadRows {
    let spec = WorkloadSpec::new(name, program, eval_options(dump_mode), stop);
    let cells = engine
        .evaluate_matrix(std::slice::from_ref(&spec), &Strategy::all())
        .unwrap_or_else(|e| panic!("{name}: evaluation failed: {e}"));
    WorkloadRows {
        name: name.to_string(),
        rows: cells.into_iter().map(|c| (c.strategy, c.eval)).collect(),
    }
}

/// Regroups row-major matrix cells into per-workload rows.
fn rows_from_cells(cells: Vec<MatrixCell>) -> Vec<WorkloadRows> {
    let mut out: Vec<WorkloadRows> = Vec::new();
    for cell in cells {
        if out.last().is_none_or(|w| w.name != cell.workload) {
            out.push(WorkloadRows {
                name: cell.workload.clone(),
                rows: Vec::with_capacity(Strategy::all().len()),
            });
        }
        out.last_mut()
            .unwrap()
            .rows
            .push((cell.strategy, cell.eval));
    }
    out
}

/// Profiling artifacts for overhead-style experiments that need the raw
/// pipeline.
///
/// # Panics
/// Panics if the pipeline fails.
pub fn profile_program(
    program: &Program,
    stop: StopWhen,
    dump_mode: DumpMode,
) -> (Pipeline<'_>, ProfiledArtifacts) {
    let pipeline = Pipeline::new(program, eval_options(dump_mode));
    let artifacts = pipeline.profiling_run(stop).expect("profiling run");
    (pipeline, artifacts)
}

/// Evaluates all 14 AWFY benchmarks (end-to-end execution, dump mode 1) on
/// a transient [`Engine`].
pub fn evaluate_awfy() -> Vec<WorkloadRows> {
    evaluate_awfy_with(&Engine::default())
}

/// [`evaluate_awfy`] on a caller-provided [`Engine`]: all
/// `14 workloads × 6 strategies` cells go through one matrix evaluation.
///
/// # Panics
/// Panics if any pipeline stage fails.
pub fn evaluate_awfy_with(engine: &Engine) -> Vec<WorkloadRows> {
    let programs: Vec<_> = Awfy::all()
        .into_iter()
        .map(|b| (b.name(), b.program()))
        .collect();
    let specs: Vec<WorkloadSpec<'_>> = programs
        .iter()
        .map(|(name, program)| {
            WorkloadSpec::new(
                *name,
                program,
                eval_options(DumpMode::OnFull),
                StopWhen::Exit,
            )
        })
        .collect();
    let cells = engine
        .evaluate_matrix(&specs, &Strategy::all())
        .unwrap_or_else(|e| panic!("awfy evaluation failed: {e}"));
    rows_from_cells(cells)
}

/// Evaluates the three microservices (time to first response, dump mode 2 —
/// the memory-mapped buffers that survive the `SIGKILL`) on a transient
/// [`Engine`].
pub fn evaluate_micro() -> Vec<WorkloadRows> {
    evaluate_micro_with(&Engine::default())
}

/// [`evaluate_micro`] on a caller-provided [`Engine`].
///
/// # Panics
/// Panics if any pipeline stage fails.
pub fn evaluate_micro_with(engine: &Engine) -> Vec<WorkloadRows> {
    let programs: Vec<_> = Microservice::all()
        .into_iter()
        .map(|m| (m.name(), m.program()))
        .collect();
    let specs: Vec<WorkloadSpec<'_>> = programs
        .iter()
        .map(|(name, program)| {
            WorkloadSpec::new(
                *name,
                program,
                eval_options(DumpMode::MemoryMapped),
                StopWhen::FirstResponse,
            )
        })
        .collect();
    let cells = engine
        .evaluate_matrix(&specs, &Strategy::all())
        .unwrap_or_else(|e| panic!("microservice evaluation failed: {e}"));
    rows_from_cells(cells)
}

/// Geometric mean.
///
/// # Panics
/// Panics on an empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty series");
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Prints a figure-style table: one row per workload, one column per
/// strategy, using `metric` to extract the reported number, with a final
/// geo.mean row (as under the paper's figures).
pub fn print_table(title: &str, results: &[WorkloadRows], metric: impl Fn(&Evaluation) -> f64) {
    println!("\n=== {title} ===");
    print!("{:<12}", "benchmark");
    for s in Strategy::all() {
        print!(" {:>15}", s.name());
    }
    println!();
    let mut columns: Vec<Vec<f64>> = vec![vec![]; Strategy::all().len()];
    for w in results {
        print!("{:<12}", w.name);
        for (i, (_s, eval)) in w.rows.iter().enumerate() {
            let v = metric(eval);
            columns[i].push(v);
            print!(" {:>15.2}", v);
        }
        println!();
    }
    print!("{:<12}", "geo.mean");
    for col in &columns {
        print!(" {:>15.2}", geomean(col));
    }
    println!();
}

/// The SSD cost model used by the speedup figures.
pub fn cost_model() -> CostModel {
    CostModel::ssd()
}
