//! # nimage-bench
//!
//! The evaluation harness: one bench target per table/figure of the paper
//! (run with `cargo bench`), plus criterion microbenches of the core
//! algorithms.
//!
//! | target | reproduces |
//! |---|---|
//! | `fig2_awfy_pagefaults` | Fig. 2 — page-fault reductions, AWFY |
//! | `fig3_micro_pagefaults` | Fig. 3 — page-fault reductions, microservices |
//! | `fig4_micro_speedups` | Fig. 4 — execution-time speedups, microservices |
//! | `fig5_awfy_speedups` | Fig. 5 — execution-time speedups, AWFY |
//! | `tab_profiling_overhead` | Sec. 7.4 — profiling overhead factors |
//! | `fig6_pagemap` | Fig. 6 — visual `.text` page map, Bounce |
//! | `abl_fault_around` | ablation — fault-around window sweep |
//! | `abl_structural_depth` | ablation — structural-hash `MAX_DEPTH` sweep |
//! | `crit_algorithms` | criterion microbenches of hashing/ordering |

#![warn(missing_docs)]

use nimage_core::{BuildOptions, Evaluation, Pipeline, ProfiledArtifacts, Strategy};
use nimage_ir::Program;
use nimage_profiler::DumpMode;
use nimage_vm::{CostModel, StopWhen, VmConfig};
use nimage_workloads::{Awfy, Microservice};

/// The build options used by every headline experiment: paper defaults
/// (4 KiB pages, 16-page fault-around, SSD cost model) with the dump mode
/// chosen per workload class (Sec. 6.1).
pub fn eval_options(dump_mode: DumpMode) -> BuildOptions {
    BuildOptions {
        vm: VmConfig {
            dump_mode,
            ..VmConfig::default()
        },
        ..BuildOptions::default()
    }
}

/// Result rows of one workload's evaluation across all strategies.
#[derive(Debug)]
pub struct WorkloadRows {
    /// Workload display name.
    pub name: String,
    /// `(strategy, evaluation)` in figure order.
    pub rows: Vec<(Strategy, Evaluation)>,
}

/// Runs the full pipeline (profile once, evaluate every strategy) for one
/// program.
///
/// # Panics
/// Panics if any pipeline stage fails — the harness treats that as a
/// broken experiment.
pub fn evaluate_program(
    name: &str,
    program: &Program,
    stop: StopWhen,
    dump_mode: DumpMode,
) -> WorkloadRows {
    let pipeline = Pipeline::new(program, eval_options(dump_mode));
    let artifacts = pipeline
        .profiling_run(stop)
        .unwrap_or_else(|e| panic!("{name}: profiling failed: {e}"));
    let rows = Strategy::all()
        .into_iter()
        .map(|s| {
            let eval = pipeline
                .evaluate_with(&artifacts, s, stop)
                .unwrap_or_else(|e| panic!("{name}: {} failed: {e}", s.name()));
            (s, eval)
        })
        .collect();
    WorkloadRows {
        name: name.to_string(),
        rows,
    }
}

/// Profiling artifacts for overhead-style experiments that need the raw
/// pipeline.
///
/// # Panics
/// Panics if the pipeline fails.
pub fn profile_program(
    program: &Program,
    stop: StopWhen,
    dump_mode: DumpMode,
) -> (Pipeline<'_>, ProfiledArtifacts) {
    let pipeline = Pipeline::new(program, eval_options(dump_mode));
    let artifacts = pipeline.profiling_run(stop).expect("profiling run");
    (pipeline, artifacts)
}

/// Evaluates all 14 AWFY benchmarks (end-to-end execution, dump mode 1).
pub fn evaluate_awfy() -> Vec<WorkloadRows> {
    Awfy::all()
        .into_iter()
        .map(|b| {
            let program = b.program();
            evaluate_program(b.name(), &program, StopWhen::Exit, DumpMode::OnFull)
        })
        .collect()
}

/// Evaluates the three microservices (time to first response, dump mode 2 —
/// the memory-mapped buffers that survive the `SIGKILL`).
pub fn evaluate_micro() -> Vec<WorkloadRows> {
    Microservice::all()
        .into_iter()
        .map(|m| {
            let program = m.program();
            evaluate_program(
                m.name(),
                &program,
                StopWhen::FirstResponse,
                DumpMode::MemoryMapped,
            )
        })
        .collect()
}

/// Geometric mean.
///
/// # Panics
/// Panics on an empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty series");
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Prints a figure-style table: one row per workload, one column per
/// strategy, using `metric` to extract the reported number, with a final
/// geo.mean row (as under the paper's figures).
pub fn print_table(title: &str, results: &[WorkloadRows], metric: impl Fn(&Evaluation) -> f64) {
    println!("\n=== {title} ===");
    print!("{:<12}", "benchmark");
    for s in Strategy::all() {
        print!(" {:>15}", s.name());
    }
    println!();
    let mut columns: Vec<Vec<f64>> = vec![vec![]; Strategy::all().len()];
    for w in results {
        print!("{:<12}", w.name);
        for (i, (_s, eval)) in w.rows.iter().enumerate() {
            let v = metric(eval);
            columns[i].push(v);
            print!(" {:>15.2}", v);
        }
        println!();
    }
    print!("{:<12}", "geo.mean");
    for col in &columns {
        print!(" {:>15.2}", geomean(col));
    }
    println!();
}

/// The SSD cost model used by the speedup figures.
pub fn cost_model() -> CostModel {
    CostModel::ssd()
}
