//! Calibration probe: run the full pipeline on selected workloads and print
//! the paper-style factors.
use nimage_core::{BuildOptions, EvalInputs, Pipeline, Strategy};
use nimage_profiler::DumpMode;
use nimage_vm::{CostModel, StopWhen, VmConfig};
use nimage_workloads::{Awfy, Microservice};

fn main() {
    let cm = CostModel::ssd();
    for b in [Awfy::Bounce, Awfy::Mandelbrot, Awfy::Storage] {
        let p = b.program();
        let pipe = Pipeline::new(&p, BuildOptions::default());
        let t0 = std::time::Instant::now();
        let artifacts = pipe.profiling_run(StopWhen::Exit).unwrap();
        let base = pipe.baseline(&artifacts, StopWhen::Exit).unwrap();
        print!("{:12}", b.name());
        for s in Strategy::all() {
            let e = pipe
                .evaluate_strategy(
                    EvalInputs {
                        artifacts: &artifacts,
                        baseline: &base,
                    },
                    s,
                    StopWhen::Exit,
                )
                .unwrap();
            print!(
                " {}={:.2}/{:.2}",
                s.name(),
                e.reported_fault_reduction(),
                e.speedup(&cm)
            );
        }
        println!(
            "  [{:?} base faults t={} h={} ops={}] {:.1?}",
            (),
            base.report.faults.text,
            base.report.faults.svm_heap,
            base.report.ops,
            t0.elapsed()
        );
    }
    for m in Microservice::all() {
        let p = m.program();
        let mut opts = BuildOptions::default();
        opts.vm = VmConfig {
            dump_mode: DumpMode::MemoryMapped,
            ..VmConfig::default()
        };
        let pipe = Pipeline::new(&p, opts);
        let t0 = std::time::Instant::now();
        let artifacts = pipe.profiling_run(StopWhen::FirstResponse).unwrap();
        let base = pipe.baseline(&artifacts, StopWhen::FirstResponse).unwrap();
        print!("{:12}", m.name());
        for s in Strategy::all() {
            let e = pipe
                .evaluate_strategy(
                    EvalInputs {
                        artifacts: &artifacts,
                        baseline: &base,
                    },
                    s,
                    StopWhen::FirstResponse,
                )
                .unwrap();
            print!(
                " {}={:.2}/{:.2}",
                s.name(),
                e.reported_fault_reduction(),
                e.speedup(&cm)
            );
        }
        println!(" {:.1?}", t0.elapsed());
    }
}
