//! Criterion microbenches of the core algorithms: MurmurHash3, the three
//! identity strategies, Ball–Larus numbering, the layout computation and
//! the IR dataflow lints.

use criterion::{criterion_group, criterion_main, Criterion};
use nimage_analysis::{analyze, AnalysisConfig};
use nimage_compiler::{compile, InlineConfig, InstrumentConfig, PathNumbering, ProfilingCfg};
use nimage_heap::{snapshot, HeapBuildConfig};
use nimage_order::{assign_ids, murmur3, HeapStrategy};
use nimage_workloads::{Awfy, RuntimeScale};

fn bench_murmur(c: &mut Criterion) {
    let data: Vec<u8> = (0..4096u32).map(|i| i as u8).collect();
    c.bench_function("murmur3_4k", |b| {
        b.iter(|| murmur3::hash64(std::hint::black_box(&data)))
    });
}

fn bench_strategies(c: &mut Criterion) {
    let program = Awfy::Bounce.program_at(&RuntimeScale::small());
    let reach = analyze(&program, &AnalysisConfig::default());
    let compiled = compile(
        &program,
        reach,
        &InlineConfig::default(),
        InstrumentConfig::NONE,
        None,
    );
    let snap = snapshot(&program, &compiled, &HeapBuildConfig::default()).unwrap();
    for strat in [
        HeapStrategy::IncrementalId,
        HeapStrategy::structural_default(),
        HeapStrategy::HeapPath,
    ] {
        c.bench_function(&format!("assign_ids/{}", strat.name()), |b| {
            b.iter(|| assign_ids(std::hint::black_box(&program), &snap, strat))
        });
    }
}

fn bench_path_numbering(c: &mut Criterion) {
    let program = Awfy::Havlak.program_at(&RuntimeScale::small());
    let entry = program.entry.unwrap();
    c.bench_function("ball_larus_numbering", |b| {
        b.iter(|| {
            let cfg = ProfilingCfg::build(program.method(entry));
            PathNumbering::compute(&cfg, 1 << 14)
        })
    });
}

fn bench_compile(c: &mut Criterion) {
    let program = Awfy::Sieve.program_at(&RuntimeScale::small());
    c.bench_function("compile_small_image", |b| {
        b.iter(|| {
            let reach = analyze(&program, &AnalysisConfig::default());
            compile(
                std::hint::black_box(&program),
                reach,
                &InlineConfig::default(),
                InstrumentConfig::NONE,
                None,
            )
        })
    });
}

fn bench_irlint(c: &mut Criterion) {
    // Havlak has the branchiest method bodies — the use-before-def
    // fixpoint (interleaved bitvector arena) dominates this lint.
    let program = Awfy::Havlak.program_at(&RuntimeScale::small());
    c.bench_function("irlint_program", |b| {
        b.iter(|| nimage_verify::irlint::lint_program(std::hint::black_box(&program)))
    });
}

criterion_group!(
    benches,
    bench_murmur,
    bench_strategies,
    bench_path_numbering,
    bench_compile,
    bench_irlint
);
criterion_main!(benches);
