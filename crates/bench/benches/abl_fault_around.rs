//! Ablation — how the kernel's fault-around window changes the picture:
//! larger windows amortize scattered faults, shrinking (but not erasing)
//! the benefit of reordering.

use nimage_core::{BuildOptions, EvalInputs, Pipeline, Strategy};
use nimage_profiler::DumpMode;
use nimage_vm::{PagingConfig, StopWhen, VmConfig};
use nimage_workloads::Awfy;

fn main() {
    let program = Awfy::Bounce.program();
    println!("\n=== Ablation: fault-around window (Bounce, cu+heap path) ===");
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "pages", "base faults", "opt faults", "reduction"
    );
    for window in [1u64, 2, 4, 8, 16, 32, 64] {
        let opts = BuildOptions {
            vm: VmConfig {
                paging: PagingConfig {
                    fault_around_pages: window,
                },
                dump_mode: DumpMode::OnFull,
                ..VmConfig::default()
            },
            ..BuildOptions::default()
        };
        let pipeline = Pipeline::new(&program, opts);
        let artifacts = pipeline.profiling_run(StopWhen::Exit).expect("profile");
        let base = pipeline
            .baseline(&artifacts, StopWhen::Exit)
            .expect("baseline");
        let eval = pipeline
            .evaluate_strategy(
                EvalInputs {
                    artifacts: &artifacts,
                    baseline: &base,
                },
                Strategy::CuPlusHeapPath,
                StopWhen::Exit,
            )
            .expect("eval");
        println!(
            "{:>8} {:>12} {:>12} {:>10.2}",
            window,
            eval.baseline.faults.total(),
            eval.optimized.faults.total(),
            eval.total_fault_reduction()
        );
    }
}
