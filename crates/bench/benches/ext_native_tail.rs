//! Extension — the paper's Appendix A future work: also reorder the pages
//! of the statically linked native tail using the instrumented run's
//! first-touch order. Compares `cu+heap path` with and without the
//! extension.

use nimage_core::{BuildOptions, EvalInputs, Pipeline, Strategy};
use nimage_profiler::DumpMode;
use nimage_vm::{StopWhen, VmConfig};
use nimage_workloads::Awfy;

fn main() {
    println!("\n=== Extension: native-tail reordering (Appendix A future work) ===");
    println!(
        "{:<12} {:>14} {:>14} {:>12}",
        "benchmark", "cu+hp faults", "+native faults", "extra gain"
    );
    for b in [Awfy::Bounce, Awfy::Mandelbrot, Awfy::Towers] {
        let program = b.program();
        let mut results = vec![];
        for reorder_native in [false, true] {
            let opts = BuildOptions {
                vm: VmConfig {
                    dump_mode: DumpMode::OnFull,
                    ..VmConfig::default()
                },
                reorder_native,
                ..BuildOptions::default()
            };
            let pipeline = Pipeline::new(&program, opts);
            let artifacts = pipeline.profiling_run(StopWhen::Exit).expect("profile");
            let base = pipeline
                .baseline(&artifacts, StopWhen::Exit)
                .expect("baseline");
            let eval = pipeline
                .evaluate_strategy(
                    EvalInputs {
                        artifacts: &artifacts,
                        baseline: &base,
                    },
                    Strategy::CuPlusHeapPath,
                    StopWhen::Exit,
                )
                .expect("eval");
            results.push(eval.optimized.faults.total());
        }
        println!(
            "{:<12} {:>14} {:>14} {:>11.2}x",
            b.name(),
            results[0],
            results[1],
            results[0] as f64 / results[1] as f64
        );
    }
}
