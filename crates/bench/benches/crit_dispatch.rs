//! Criterion microbench of interpreter dispatch: the pre-lowered
//! execution engine vs the legacy tree-walking interpreter
//! (DESIGN.md §11), on the same built image.
//!
//! Three views:
//! - `dispatch/{legacy,lowered}` — a full `run_image` per iteration,
//!   including per-VM setup (the lowered engine pays lowering here when
//!   no shared `LoweredProgram` is supplied).
//! - `dispatch/lowered_shared` — the engine's steady state: one
//!   `Arc<LoweredProgram>` + `Arc<HeapTemplate>` built up front and
//!   shared across iterations, so the measured cost is pure step-loop
//!   dispatch. This is the configuration the eval matrix runs in.
//! - `lowering/build` — the one-time lowering pass itself.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use nimage_compiler::InstrumentConfig;
use nimage_core::{BuildOptions, Parallelism, Pipeline, RunParts};
use nimage_vm::{ExecMode, HeapTemplate, LoweredProgram, StopWhen};
use nimage_workloads::{Awfy, RuntimeScale};

fn opts(exec: ExecMode) -> BuildOptions {
    let mut o = BuildOptions {
        threads: Parallelism::threads(1),
        ..BuildOptions::default()
    };
    o.vm.exec = exec;
    o
}

fn bench_dispatch(c: &mut Criterion) {
    let program = Awfy::Bounce.program_at(&RuntimeScale::small());
    for exec in [ExecMode::Legacy, ExecMode::Lowered] {
        let p = Pipeline::new(&program, opts(exec));
        let built = p.build_instrumented(InstrumentConfig::NONE).unwrap();
        let name = match exec {
            ExecMode::Legacy => "dispatch/legacy",
            ExecMode::Lowered => "dispatch/lowered",
        };
        c.bench_function(name, |b| {
            b.iter(|| {
                p.run_image(std::hint::black_box(&built), StopWhen::Exit)
                    .unwrap()
            })
        });
    }

    // Steady state: lowering and heap materialization amortized away.
    let p = Pipeline::new(&program, opts(ExecMode::Lowered));
    let built = p.build_instrumented(InstrumentConfig::NONE).unwrap();
    let template = Arc::new(HeapTemplate::from_build_heap(built.snapshot.heap()));
    let lowered = Arc::new(LoweredProgram::build(
        &program,
        &built.compiled,
        opts(ExecMode::Lowered).vm.max_paths,
    ));
    c.bench_function("dispatch/lowered_shared", |b| {
        b.iter(|| {
            p.run(
                RunParts::new(
                    std::hint::black_box(&built.compiled),
                    &built.snapshot,
                    &built.image,
                )
                .heap(Some(template.clone()))
                .lowered(Some(lowered.clone())),
                StopWhen::Exit,
            )
            .unwrap()
        })
    });
}

fn bench_lowering(c: &mut Criterion) {
    let program = Awfy::Bounce.program_at(&RuntimeScale::small());
    let o = opts(ExecMode::Lowered);
    let p = Pipeline::new(&program, o.clone());
    let built = p.build_instrumented(InstrumentConfig::NONE).unwrap();
    c.bench_function("lowering/build", |b| {
        b.iter(|| {
            LoweredProgram::build(
                std::hint::black_box(&program),
                &built.compiled,
                o.vm.max_paths,
            )
        })
    });
}

criterion_group!(benches, bench_dispatch, bench_lowering);
criterion_main!(benches);
