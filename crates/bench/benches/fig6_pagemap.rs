//! Fig. 6 — visual representation of the `.text` section of AWFY *Bounce*:
//! `#` = page caused a fault (green), `+` = resident without fault (red),
//! `.` = never mapped (black). Regular binary vs the `cu`-ordered binary.

use nimage_bench::{eval_options, profile_program};
use nimage_core::Strategy;
use nimage_profiler::DumpMode;
use nimage_vm::{render_ascii, summarize, touched_extent, StopWhen};
use nimage_workloads::Awfy;

fn main() {
    let program = Awfy::Bounce.program();
    let (pipeline, artifacts) = profile_program(&program, StopWhen::Exit, DumpMode::OnFull);
    let _ = eval_options(DumpMode::OnFull);

    let baseline_img = pipeline
        .build_optimized(&artifacts, None)
        .expect("baseline");
    let baseline = pipeline
        .run_image(&baseline_img, StopWhen::Exit)
        .expect("baseline run");
    let optimized_img = pipeline
        .build_optimized(&artifacts, Some(Strategy::Cu))
        .expect("cu build");
    let optimized = pipeline
        .run_image(&optimized_img, StopWhen::Exit)
        .expect("cu run");

    println!("\n=== Fig. 6a: .text page map, regular binary (Bounce) ===");
    println!("{}", render_ascii(&baseline.text_page_states, 64));
    let s = summarize(&baseline.text_page_states);
    println!(
        "faulted {} resident {} untouched {} | touched extent: page {:?}",
        s.faulted,
        s.resident,
        s.untouched,
        touched_extent(&baseline.text_page_states)
    );

    println!("\n=== Fig. 6b: .text page map, cu-ordered binary (Bounce) ===");
    println!("{}", render_ascii(&optimized.text_page_states, 64));
    let s = summarize(&optimized.text_page_states);
    println!(
        "faulted {} resident {} untouched {} | touched extent: page {:?}",
        s.faulted,
        s.resident,
        s.untouched,
        touched_extent(&optimized.text_page_states)
    );
    println!(
        "\n.text faults: {} (regular) vs {} (cu) — executed code compacted toward the front;",
        baseline.faults.text, optimized.faults.text
    );
    println!("the faults near the end of .text are unprofiled native-library pages (Appendix A).");
}
