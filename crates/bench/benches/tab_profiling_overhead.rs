//! Sec. 7.4 — execution-time overhead of the tracing profiler: AWFY with
//! dump mode 1 (flush on full / at termination), microservices with dump
//! mode 2 (memory-mapped buffers).

use nimage_bench::{eval_options, geomean};
use nimage_compiler::InstrumentConfig;
use nimage_core::Pipeline;
use nimage_profiler::DumpMode;
use nimage_vm::StopWhen;
use nimage_workloads::{Awfy, Microservice};

fn modes() -> [(&'static str, InstrumentConfig); 3] {
    [
        (
            "cu",
            InstrumentConfig {
                trace_cu: true,
                ..InstrumentConfig::NONE
            },
        ),
        (
            "method",
            InstrumentConfig {
                trace_methods: true,
                ..InstrumentConfig::NONE
            },
        ),
        (
            "heap",
            InstrumentConfig {
                trace_heap: true,
                ..InstrumentConfig::NONE
            },
        ),
    ]
}

fn main() {
    println!("\n=== Sec. 7.4: tracing-profiler overhead factors ===");
    println!(
        "{:<12} {:>8} {:>8} {:>8}",
        "benchmark", "cu", "method", "heap"
    );
    let mut cols: [Vec<f64>; 3] = [vec![], vec![], vec![]];
    for b in Awfy::all() {
        let program = b.program();
        let pipeline = Pipeline::new(&program, eval_options(DumpMode::OnFull));
        print!("{:<12}", b.name());
        for (i, (_n, cfg)) in modes().into_iter().enumerate() {
            let f = pipeline
                .profiling_overhead(cfg, StopWhen::Exit)
                .expect("overhead run");
            cols[i].push(f);
            print!(" {:>8.2}", f);
        }
        println!();
    }
    println!(
        "{:<12} {:>8.2} {:>8.2} {:>8.2}   (AWFY geo.mean, dump mode 1)",
        "geo.mean",
        geomean(&cols[0]),
        geomean(&cols[1]),
        geomean(&cols[2])
    );

    let mut cols: [Vec<f64>; 3] = [vec![], vec![], vec![]];
    for m in Microservice::all() {
        let program = m.program();
        let pipeline = Pipeline::new(&program, eval_options(DumpMode::MemoryMapped));
        print!("{:<12}", m.name());
        for (i, (_n, cfg)) in modes().into_iter().enumerate() {
            let f = pipeline
                .profiling_overhead(cfg, StopWhen::FirstResponse)
                .expect("overhead run");
            cols[i].push(f);
            print!(" {:>8.2}", f);
        }
        println!();
    }
    println!(
        "{:<12} {:>8.2} {:>8.2} {:>8.2}   (microservices geo.mean, dump mode 2)",
        "geo.mean",
        geomean(&cols[0]),
        geomean(&cols[1]),
        geomean(&cols[2])
    );
}
