//! Fig. 3 — page-fault reduction achieved by the ordering strategies on the
//! microservice workloads (measured at the first response, after which the
//! paper kills the service).

fn main() {
    let results = nimage_bench::evaluate_micro();
    nimage_bench::print_table(
        "Fig. 3: page-fault reduction, microservices (higher is better)",
        &results,
        |e| e.reported_fault_reduction(),
    );
}
