//! Ablation — SSD vs NFS cost models: the paper "executed the same
//! experiments employing an NFS and obtained similar results" (Sec. 7.1).
//! Fault *counts* are storage-independent; the speedups grow with per-fault
//! latency but keep the same ordering.

use nimage_bench::{evaluate_program, geomean};
use nimage_core::Strategy;
use nimage_profiler::DumpMode;
use nimage_vm::{CostModel, StopWhen};
use nimage_workloads::Awfy;

fn main() {
    println!("\n=== Ablation: SSD vs NFS cost models (speedups) ===");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "benchmark", "cu (SSD)", "cu (NFS)", "combined SSD", "combined NFS"
    );
    let ssd = CostModel::ssd();
    let nfs = CostModel::nfs();
    let mut cols: [Vec<f64>; 4] = [vec![], vec![], vec![], vec![]];
    for b in [Awfy::Bounce, Awfy::Sieve, Awfy::Storage] {
        let program = b.program();
        let rows = evaluate_program(b.name(), &program, StopWhen::Exit, DumpMode::OnFull);
        let get = |s: Strategy, cm: &CostModel| {
            rows.rows
                .iter()
                .find(|(st, _)| *st == s)
                .map(|(_, e)| e.speedup(cm))
                .unwrap()
        };
        let vals = [
            get(Strategy::Cu, &ssd),
            get(Strategy::Cu, &nfs),
            get(Strategy::CuPlusHeapPath, &ssd),
            get(Strategy::CuPlusHeapPath, &nfs),
        ];
        for (c, v) in cols.iter_mut().zip(vals) {
            c.push(v);
        }
        println!(
            "{:<12} {:>11.2}x {:>11.2}x {:>11.2}x {:>11.2}x",
            b.name(),
            vals[0],
            vals[1],
            vals[2],
            vals[3]
        );
    }
    println!(
        "{:<12} {:>11.2}x {:>11.2}x {:>11.2}x {:>11.2}x",
        "geo.mean",
        geomean(&cols[0]),
        geomean(&cols[1]),
        geomean(&cols[2]),
        geomean(&cols[3])
    );
}
