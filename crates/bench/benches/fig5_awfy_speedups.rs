//! Fig. 5 — end-to-end execution-time speedup on AWFY under the SSD cost
//! model.

fn main() {
    let cm = nimage_bench::cost_model();
    let results = nimage_bench::evaluate_awfy();
    nimage_bench::print_table(
        "Fig. 5: execution-time speedup, AWFY (higher is better)",
        &results,
        |e| e.speedup(&cm),
    );
}
