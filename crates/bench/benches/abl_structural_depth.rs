//! Ablation — the structural hash's MAX_DEPTH trade-off (Sec. 5.2): deeper
//! encodings disambiguate more objects but absorb more cross-build
//! divergence into the hash, and cost more to compute.

use nimage_bench::profile_program;
use nimage_order::{assign_ids, match_rate, HeapStrategy};
use nimage_profiler::DumpMode;
use nimage_vm::StopWhen;
use nimage_workloads::Awfy;
use std::time::Instant;

fn main() {
    let program = Awfy::Bounce.program();
    let (pipeline, artifacts) = profile_program(&program, StopWhen::Exit, DumpMode::OnFull);
    let optimized = pipeline.build_optimized(&artifacts, None).expect("build");

    println!("\n=== Ablation: structural-hash MAX_DEPTH (Bounce) ===");
    println!(
        "{:>6} {:>12} {:>14} {:>12}",
        "depth", "distinct ids", "profile match", "hash time"
    );
    // The recorded profile was taken at the paper's depth (2); recompute
    // profiles per depth by re-deriving ids on the instrumented snapshot.
    let instrumented = pipeline
        .build_instrumented(nimage_compiler::InstrumentConfig::FULL)
        .expect("instrumented build");
    for depth in 0..=4 {
        let strat = HeapStrategy::StructuralHash { max_depth: depth };
        let t0 = Instant::now();
        let ids_inst = assign_ids(&program, &instrumented.snapshot, strat);
        let hash_time = t0.elapsed();
        let distinct: std::collections::HashSet<u64> = ids_inst.values().copied().collect();
        // Profile = instrumented ids of the objects named by the depth-2
        // heap profile's access order (re-keyed at this depth).
        let base_profile = &artifacts.heap_profiles[&HeapStrategy::structural_default()];
        let _ = base_profile;
        let profile = nimage_order::HeapOrderProfile {
            ids: instrumented
                .snapshot
                .entries()
                .iter()
                .map(|e| ids_inst[&e.obj])
                .collect(),
            spans: vec![],
        };
        let ids_opt = assign_ids(&program, &optimized.snapshot, strat);
        println!(
            "{:>6} {:>12} {:>13.1}% {:>10.1?}",
            depth,
            distinct.len(),
            100.0 * match_rate(&ids_opt, &profile),
            hash_time
        );
    }
}
