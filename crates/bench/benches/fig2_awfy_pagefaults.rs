//! Fig. 2 — page-fault reduction achieved by the ordering strategies on
//! AWFY. Code strategies report `.text` reductions, heap strategies
//! `.svm_heap` reductions, `cu+heap path` both sections combined.

fn main() {
    let results = nimage_bench::evaluate_awfy();
    nimage_bench::print_table(
        "Fig. 2: page-fault reduction, AWFY (higher is better)",
        &results,
        |e| e.reported_fault_reduction(),
    );
}
