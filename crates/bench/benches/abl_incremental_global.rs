//! Ablation — Algorithm 1's design choice of *per-type* incremental
//! counters vs a single global counter.
//!
//! The paper packs the type id into the upper 32 bits so that "the
//! inaccuracies introduced by an object affect only the ordering of the
//! objects of the same type". This bench demonstrates exactly that: a heap
//! where PEA folding removes objects of one type (`Scratch`) that are
//! interleaved before the objects the program actually accesses
//! (`Config`). Per-type counters keep every `Config` identity stable;
//! a global counter shifts them all.

use std::collections::HashMap;

use nimage_heap::{HeapBuildConfig, HeapSnapshot, ObjId};
use nimage_ir::{Program, ProgramBuilder, TypeRef};
use nimage_order::{assign_global_incremental_ids, assign_ids, HeapStrategy};

/// Interleaved Scratch/Config registry. With `extra_scratch`, one more
/// Scratch object is allocated before everything else — the "inaccuracy
/// introduced by an object" whose blast radius the per-type counters are
/// designed to contain (Sec. 5.1).
fn program(extra_scratch: bool) -> Program {
    let mut pb = ProgramBuilder::new();
    let scratch = pb.add_class("abl.Scratch", None);
    let f_pad = pb.add_instance_field(scratch, "pad", TypeRef::Int);
    let config = pb.add_class("abl.Config", None);
    let f_key = pb.add_instance_field(config, "key", TypeRef::Int);
    // Configs hold a child object, so they are interior (non-leaf) nodes —
    // scalar replacement does not fold them, only the Scratch leaves.
    let detail = pb.add_class("abl.Detail", None);
    let f_detail_v = pb.add_instance_field(detail, "v", TypeRef::Int);
    let f_child = pb.add_instance_field(config, "child", TypeRef::Object(detail));

    let holder = pb.add_class("abl.Holder", None);
    let f_scratch = pb.add_static_field(
        holder,
        "SCRATCH",
        TypeRef::array_of(TypeRef::Object(scratch)),
    );
    let f_configs = pb.add_static_field(
        holder,
        "CONFIGS",
        TypeRef::array_of(TypeRef::Object(config)),
    );
    let f_extra = pb.add_static_field(holder, "EXTRA", TypeRef::Object(scratch));
    let cl = pb.declare_clinit(holder);
    let mut f = pb.body(cl);
    if extra_scratch {
        let e = f.new_object(scratch);
        let tag = f.iconst(-1);
        f.put_field(e, f_pad, tag);
        f.put_static(f_extra, e);
    }
    let n = f.iconst(400);
    let scr = f.new_array(TypeRef::Object(scratch), n);
    let cfgs = f.new_array(TypeRef::Object(config), n);
    let from = f.iconst(0);
    f.for_range(from, n, |f, i| {
        let s = f.new_object(scratch);
        f.put_field(s, f_pad, i);
        f.array_set(scr, i, s);
        let c = f.new_object(config);
        f.put_field(c, f_key, i);
        let d = f.new_object(detail);
        f.put_field(d, f_detail_v, i);
        f.put_field(c, f_child, d);
        f.array_set(cfgs, i, c);
    });
    f.put_static(f_scratch, scr);
    f.put_static(f_configs, cfgs);
    f.ret(None);
    pb.finish_body(cl, f);

    let mainc = pb.add_class("abl.Main", None);
    let main = pb.declare_static(mainc, "main", &[], Some(TypeRef::Int));
    let mut f = pb.body(main);
    let extra = f.get_static(f_extra);
    let _ = extra;
    let cfgs = f.get_static(f_configs);
    let scr = f.get_static(f_scratch);
    let _ = scr;
    let acc = f.iconst(0);
    let from = f.iconst(0);
    let n = f.array_len(cfgs);
    f.for_range(from, n, |f, i| {
        let c = f.array_get(cfgs, i);
        let v = f.get_field(c, f_key);
        let s = f.add(acc, v);
        f.assign(acc, s);
    });
    f.ret(Some(acc));
    pb.finish_body(main, f);
    pb.set_entry(main);
    pb.build().unwrap()
}

fn snapshot_of(p: &Program) -> HeapSnapshot {
    let reach = nimage_analysis::analyze(p, &nimage_analysis::AnalysisConfig::default());
    let cp = nimage_compiler::compile(
        p,
        reach,
        &nimage_compiler::InlineConfig::default(),
        nimage_compiler::InstrumentConfig::NONE,
        None,
    );
    nimage_heap::snapshot(p, &cp, &HeapBuildConfig::default()).unwrap()
}

/// Fraction of Config objects whose identity is unchanged between the
/// unfolded ("instrumented") and folded ("optimized") snapshots.
fn stable_fraction(
    p: &Program,
    a: &HeapSnapshot,
    b: &HeapSnapshot,
    ids: impl Fn(&HeapSnapshot) -> HashMap<ObjId, u64>,
) -> f64 {
    let ids_a = ids(a);
    let ids_b = ids(b);
    let key_of = |snap: &HeapSnapshot, o: ObjId| -> Option<i64> {
        match &snap.heap().get(o).kind {
            nimage_heap::HObjectKind::Instance { class, fields }
                if p.class(*class).name == "abl.Config" =>
            {
                match fields[0] {
                    nimage_heap::HValue::Int(v) => Some(v),
                    _ => None,
                }
            }
            _ => None,
        }
    };
    let mut id_by_key_a = HashMap::new();
    for e in a.entries() {
        if let Some(k) = key_of(a, e.obj) {
            id_by_key_a.insert(k, ids_a[&e.obj]);
        }
    }
    let mut total = 0;
    let mut stable = 0;
    for e in b.entries() {
        if let Some(k) = key_of(b, e.obj) {
            total += 1;
            if id_by_key_a.get(&k) == Some(&ids_b[&e.obj]) {
                stable += 1;
            }
        }
    }
    stable as f64 / total.max(1) as f64
}

fn main() {
    // "Instrumented" build vs "optimized" build whose heap gained one extra
    // early Scratch object (e.g. kept alive by different inlining/PEA).
    let pa = program(false);
    let pb_ = program(true);
    let a = snapshot_of(&pa);
    let b = snapshot_of(&pb_);
    println!("\n=== Ablation: per-type vs global incremental counters ===");
    println!(
        "snapshots: {} vs {} entries (one divergent early object);",
        a.entries().len(),
        b.entries().len()
    );
    println!("fraction of accessed Config identities that survive the divergence:");
    let per_type = stable_fraction(&pa, &a, &b, |s| {
        assign_ids(&pa, s, HeapStrategy::IncrementalId)
    });
    let global = stable_fraction(&pa, &a, &b, |s| assign_global_incremental_ids(&pa, s));
    println!("  per-type counters : {:>6.1}%", per_type * 100.0);
    println!("  global counter    : {:>6.1}%", global * 100.0);
    assert!(
        per_type > global,
        "type segregation must contain the damage"
    );
}
