//! Fig. 4 — execution-time speedup on the microservices: elapsed time until
//! the first response, under the SSD cost model.

fn main() {
    let cm = nimage_bench::cost_model();
    let results = nimage_bench::evaluate_micro();
    nimage_bench::print_table(
        "Fig. 4: time-to-first-response speedup, microservices (higher is better)",
        &results,
        |e| e.speedup(&cm),
    );
}
