//! Binary record encoding and the on-disk trace format.

use std::error::Error;
use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// One decoded trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceRecord {
    /// A compilation-unit entry; `sig` indexes the session string table and
    /// names the CU's root-method signature.
    CuEntry {
        /// String-table index of the root-method signature.
        sig: u32,
    },
    /// A method-entry event (emitted by the method-ordering
    /// instrumentation; includes entries of inlined method copies).
    MethodEntry {
        /// String-table index of the method signature.
        sig: u32,
    },
    /// An executed Ball–Larus path with the object identifiers observed at
    /// its heap-access sites.
    Path {
        /// String-table index of the method signature.
        method: u32,
        /// Start mini-block of the path.
        start: u32,
        /// Ball–Larus path id.
        path_id: u64,
        /// Object identifiers, one per executed heap-access site (0 for
        /// accesses to objects outside the heap snapshot).
        obj_ids: Vec<u64>,
    },
}

const TAG_CU: u8 = 1;
const TAG_PATH: u8 = 2;
const TAG_METHOD: u8 = 3;

impl TraceRecord {
    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            TraceRecord::CuEntry { .. } | TraceRecord::MethodEntry { .. } => 1 + 4,
            TraceRecord::Path { obj_ids, .. } => 1 + 4 + 4 + 8 + 4 + 8 * obj_ids.len(),
        }
    }

    /// Appends the binary encoding to `out`.
    pub fn encode(&self, out: &mut BytesMut) {
        match self {
            TraceRecord::CuEntry { sig } => {
                out.put_u8(TAG_CU);
                out.put_u32(*sig);
            }
            TraceRecord::MethodEntry { sig } => {
                out.put_u8(TAG_METHOD);
                out.put_u32(*sig);
            }
            TraceRecord::Path {
                method,
                start,
                path_id,
                obj_ids,
            } => {
                out.put_u8(TAG_PATH);
                out.put_u32(*method);
                out.put_u32(*start);
                out.put_u64(*path_id);
                out.put_u32(obj_ids.len() as u32);
                for &o in obj_ids {
                    out.put_u64(o);
                }
            }
        }
    }
}

/// Error decoding a trace stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceDecodeError {
    /// Unknown record tag byte.
    BadTag(u8),
    /// The stream ended in the middle of a record.
    Truncated,
    /// The file header was malformed.
    BadHeader,
}

impl fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceDecodeError::BadTag(t) => write!(f, "unknown trace record tag {t}"),
            TraceDecodeError::Truncated => write!(f, "truncated trace stream"),
            TraceDecodeError::BadHeader => write!(f, "malformed trace header"),
        }
    }
}

impl Error for TraceDecodeError {}

/// Decodes a stream of records from raw bytes.
///
/// # Errors
/// Returns [`TraceDecodeError`] on malformed input.
pub fn decode_records(mut data: &[u8]) -> Result<Vec<TraceRecord>, TraceDecodeError> {
    let mut out = vec![];
    while data.has_remaining() {
        let tag = data.get_u8();
        match tag {
            TAG_CU => {
                if data.remaining() < 4 {
                    return Err(TraceDecodeError::Truncated);
                }
                out.push(TraceRecord::CuEntry {
                    sig: data.get_u32(),
                });
            }
            TAG_METHOD => {
                if data.remaining() < 4 {
                    return Err(TraceDecodeError::Truncated);
                }
                out.push(TraceRecord::MethodEntry {
                    sig: data.get_u32(),
                });
            }
            TAG_PATH => {
                if data.remaining() < 20 {
                    return Err(TraceDecodeError::Truncated);
                }
                let method = data.get_u32();
                let start = data.get_u32();
                let path_id = data.get_u64();
                let n = data.get_u32() as usize;
                if data.remaining() < 8 * n {
                    return Err(TraceDecodeError::Truncated);
                }
                let mut obj_ids = Vec::with_capacity(n);
                for _ in 0..n {
                    obj_ids.push(data.get_u64());
                }
                out.push(TraceRecord::Path {
                    method,
                    start,
                    path_id,
                    obj_ids,
                });
            }
            t => return Err(TraceDecodeError::BadTag(t)),
        }
    }
    Ok(out)
}

/// A fully decoded trace: the session string table plus each thread's record
/// sequence, in thread-creation order (Sec. 7.1 concatenates per-thread
/// orderings in creation order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Interned strings (method signatures).
    pub strings: Vec<String>,
    /// Per-thread record streams in thread creation order.
    pub threads: Vec<Vec<TraceRecord>>,
}

impl Trace {
    /// Resolves a string-table index.
    pub fn string(&self, idx: u32) -> &str {
        &self.strings[idx as usize]
    }
}

const FILE_MAGIC: &[u8; 4] = b"NTRC";

/// Serializes a trace (string table + per-thread streams) to bytes.
pub fn write_trace(trace: &Trace) -> Bytes {
    let mut b = BytesMut::new();
    b.put_slice(FILE_MAGIC);
    b.put_u32(trace.strings.len() as u32);
    for s in &trace.strings {
        b.put_u32(s.len() as u32);
        b.put_slice(s.as_bytes());
    }
    b.put_u32(trace.threads.len() as u32);
    for t in &trace.threads {
        let mut body = BytesMut::new();
        for r in t {
            r.encode(&mut body);
        }
        b.put_u64(body.len() as u64);
        b.put_slice(&body);
    }
    b.freeze()
}

/// Parses the format produced by [`write_trace`].
///
/// # Errors
/// Returns [`TraceDecodeError`] on malformed input.
pub fn read_trace(mut data: &[u8]) -> Result<Trace, TraceDecodeError> {
    if data.len() < 8 || &data[..4] != FILE_MAGIC {
        return Err(TraceDecodeError::BadHeader);
    }
    data.advance(4);
    let n_strings = data.get_u32() as usize;
    let mut strings = Vec::with_capacity(n_strings);
    for _ in 0..n_strings {
        if data.remaining() < 4 {
            return Err(TraceDecodeError::Truncated);
        }
        let len = data.get_u32() as usize;
        if data.remaining() < len {
            return Err(TraceDecodeError::Truncated);
        }
        let s = std::str::from_utf8(&data[..len])
            .map_err(|_| TraceDecodeError::BadHeader)?
            .to_string();
        data.advance(len);
        strings.push(s);
    }
    if data.remaining() < 4 {
        return Err(TraceDecodeError::Truncated);
    }
    let n_threads = data.get_u32() as usize;
    let mut threads = Vec::with_capacity(n_threads);
    for _ in 0..n_threads {
        if data.remaining() < 8 {
            return Err(TraceDecodeError::Truncated);
        }
        let len = data.get_u64() as usize;
        if data.remaining() < len {
            return Err(TraceDecodeError::Truncated);
        }
        threads.push(decode_records(&data[..len])?);
        data.advance(len);
    }
    Ok(Trace { strings, threads })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord::CuEntry { sig: 3 },
            TraceRecord::MethodEntry { sig: 4 },
            TraceRecord::Path {
                method: 1,
                start: 0,
                path_id: 42,
                obj_ids: vec![7, 0, 9],
            },
            TraceRecord::Path {
                method: 2,
                start: 5,
                path_id: 0,
                obj_ids: vec![],
            },
        ]
    }

    #[test]
    fn record_roundtrip() {
        let records = sample_records();
        let mut buf = BytesMut::new();
        for r in &records {
            r.encode(&mut buf);
        }
        assert_eq!(decode_records(&buf).unwrap(), records);
    }

    #[test]
    fn encoded_len_matches_encoding() {
        for r in sample_records() {
            let mut buf = BytesMut::new();
            r.encode(&mut buf);
            assert_eq!(buf.len(), r.encoded_len());
        }
    }

    #[test]
    fn truncated_record_is_detected() {
        let mut buf = BytesMut::new();
        sample_records()[1].encode(&mut buf);
        for cut in 1..buf.len() {
            assert_eq!(
                decode_records(&buf[..cut]),
                Err(TraceDecodeError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bad_tag_is_detected() {
        assert_eq!(decode_records(&[99]), Err(TraceDecodeError::BadTag(99)));
    }

    #[test]
    fn trace_file_roundtrip() {
        let trace = Trace {
            strings: vec!["a.B.c(0)".into(), "d.E.f(2)".into()],
            threads: vec![sample_records(), vec![]],
        };
        let bytes = write_trace(&trace);
        assert_eq!(read_trace(&bytes).unwrap(), trace);
    }

    #[test]
    fn trace_file_bad_magic() {
        assert_eq!(read_trace(b"XXXX0000"), Err(TraceDecodeError::BadHeader));
    }
}
