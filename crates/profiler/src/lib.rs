//! # nimage-profiler
//!
//! The tracing profiler's runtime half (Sec. 6.1): per-thread trace
//! buffers, the two buffer-dumping modes, and the binary trace-file format.
//!
//! The VM's instrumentation emits two kinds of records:
//!
//! * **CU-entry records** — one per compilation-unit entry (for *cu
//!   ordering*);
//! * **path records** — a Ball–Larus `(method, start node, path id)` triple
//!   followed by the object identifiers collected at the heap-access sites
//!   of that path: "each path ID (associated with a fixed sequence of
//!   events) determines how many object identifiers are stored after the
//!   path ID".
//!
//! Records go to a per-thread buffer. In [`DumpMode::OnFull`] the buffer is
//! flushed to the durable trace file when a record would not fit and at
//! thread termination — appropriate for workloads that terminate normally.
//! In [`DumpMode::MemoryMapped`] every record is durable immediately
//! (modelling an mmap-backed buffer that the kernel persists even across
//! `SIGKILL`), at the cost of a remap whenever a segment fills — the mode
//! the paper uses for microservice workloads killed after the first
//! response.
//!
//! Method signatures are interned in a per-session string table so that
//! records are compact and signature strings appear once per trace file.

#![warn(missing_docs)]

mod session;
mod wire;

pub use session::{DumpMode, SessionStats, ThreadHandle, TraceSession};
pub use wire::{read_trace, write_trace, Trace, TraceDecodeError, TraceRecord};
