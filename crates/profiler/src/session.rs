//! Per-thread buffered trace collection with the two dump modes of
//! Sec. 6.1.

use std::collections::HashMap;

use bytes::BytesMut;

use crate::wire::{decode_records, Trace, TraceRecord};

/// How thread-local buffers reach the durable trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DumpMode {
    /// Flush the buffer when a record would not fit, and at thread
    /// termination. Records still buffered at an *abnormal* termination
    /// (`SIGKILL`) are lost. Used for normally terminating workloads (AWFY).
    OnFull,
    /// The buffer is memory-mapped onto the trace file: every record is
    /// durable immediately; when a mapping segment fills, the buffer is
    /// remapped at a higher file offset. Survives `SIGKILL`. Used for
    /// microservice workloads killed after the first response.
    MemoryMapped,
}

/// Handle to one traced thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadHandle(usize);

/// Counters describing profiling activity, used by the overhead accounting
/// of `nimage-vm` (Sec. 7.4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// CU-entry records written.
    pub cu_records: u64,
    /// Method-entry records written.
    pub method_records: u64,
    /// Path records written.
    pub path_records: u64,
    /// Object identifiers written (inside path records).
    pub obj_ids: u64,
    /// Buffer flushes (mode 1).
    pub flushes: u64,
    /// Buffer remaps (mode 2).
    pub remaps: u64,
    /// Records lost to an abnormal termination.
    pub lost_records: u64,
}

#[derive(Debug)]
struct ThreadState {
    /// Staging buffer (mode 1) — encoded records not yet durable.
    staging: BytesMut,
    staged_records: u64,
    /// Durable trace-file bytes.
    file: BytesMut,
    /// Bytes used in the current mmap segment (mode 2).
    segment_used: usize,
    terminated: bool,
}

/// A live trace-collection session (one per instrumented process run).
///
/// ```
/// use nimage_profiler::{TraceSession, DumpMode, TraceRecord};
///
/// let mut session = TraceSession::new(DumpMode::OnFull, 4096);
/// let sig = session.intern("app.Main.main(0)");
/// let thread = session.start_thread();
/// session.record_cu_entry(thread, sig);
/// session.record_path(thread, sig, 0, 3, vec![7, 0]);
/// session.end_thread(thread);
/// let trace = session.into_trace();
/// assert_eq!(trace.threads[0].len(), 2);
/// assert!(matches!(trace.threads[0][0], TraceRecord::CuEntry { .. }));
/// ```
#[derive(Debug)]
pub struct TraceSession {
    mode: DumpMode,
    buffer_capacity: usize,
    strings: Vec<String>,
    string_map: HashMap<String, u32>,
    threads: Vec<ThreadState>,
    stats: SessionStats,
}

impl TraceSession {
    /// Creates a session.
    ///
    /// # Panics
    /// Panics if `buffer_capacity` cannot hold a maximal record (< 64
    /// bytes).
    pub fn new(mode: DumpMode, buffer_capacity: usize) -> Self {
        assert!(buffer_capacity >= 64, "buffer capacity too small");
        TraceSession {
            mode,
            buffer_capacity,
            strings: vec![],
            string_map: HashMap::new(),
            threads: vec![],
            stats: SessionStats::default(),
        }
    }

    /// Interns a method signature into the session string table.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.string_map.get(s) {
            return i;
        }
        let i = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.string_map.insert(s.to_string(), i);
        i
    }

    /// Registers a new thread (threads are kept in creation order).
    pub fn start_thread(&mut self) -> ThreadHandle {
        self.threads.push(ThreadState {
            staging: BytesMut::new(),
            staged_records: 0,
            file: BytesMut::new(),
            segment_used: 0,
            terminated: false,
        });
        ThreadHandle(self.threads.len() - 1)
    }

    /// Current statistics.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    fn write(&mut self, th: ThreadHandle, record: &TraceRecord) {
        let cap = self.buffer_capacity;
        let mode = self.mode;
        let t = &mut self.threads[th.0];
        assert!(!t.terminated, "record on terminated thread");
        let len = record.encoded_len();
        match mode {
            DumpMode::OnFull => {
                if t.staging.len() + len > cap {
                    // Flush before storing a record that would not fit.
                    t.file.extend_from_slice(&t.staging);
                    t.staging.clear();
                    t.staged_records = 0;
                    self.stats.flushes += 1;
                }
                record.encode(&mut t.staging);
                t.staged_records += 1;
            }
            DumpMode::MemoryMapped => {
                if t.segment_used + len > cap {
                    // Remap the buffer at a higher offset of the file.
                    t.segment_used = 0;
                    self.stats.remaps += 1;
                }
                record.encode(&mut t.file);
                t.segment_used += len;
            }
        }
    }

    /// Records a CU-entry event.
    pub fn record_cu_entry(&mut self, th: ThreadHandle, sig: u32) {
        self.write(th, &TraceRecord::CuEntry { sig });
        self.stats.cu_records += 1;
    }

    /// Records a method-entry event.
    pub fn record_method_entry(&mut self, th: ThreadHandle, sig: u32) {
        self.write(th, &TraceRecord::MethodEntry { sig });
        self.stats.method_records += 1;
    }

    /// Records an executed path with its observed object identifiers.
    pub fn record_path(
        &mut self,
        th: ThreadHandle,
        method: u32,
        start: u32,
        path_id: u64,
        obj_ids: Vec<u64>,
    ) {
        self.stats.obj_ids += obj_ids.len() as u64;
        self.stats.path_records += 1;
        self.write(
            th,
            &TraceRecord::Path {
                method,
                start,
                path_id,
                obj_ids,
            },
        );
    }

    /// Normal thread termination: flushes the staging buffer.
    pub fn end_thread(&mut self, th: ThreadHandle) {
        let t = &mut self.threads[th.0];
        if !t.staging.is_empty() {
            t.file.extend_from_slice(&t.staging);
            t.staging.clear();
            t.staged_records = 0;
            self.stats.flushes += 1;
        }
        t.terminated = true;
    }

    /// Abnormal process termination (`SIGKILL`): thread-termination handlers
    /// do not run, so staged mode-1 records are lost; memory-mapped records
    /// survive because "the kernel ensures that traces are not lost".
    pub fn kill(&mut self) {
        for t in &mut self.threads {
            if !t.terminated {
                self.stats.lost_records += t.staged_records;
                t.staging.clear();
                t.staged_records = 0;
                t.terminated = true;
            }
        }
    }

    /// Finishes the session and decodes the durable trace.
    ///
    /// # Panics
    /// Panics if any thread is still live (call [`Self::end_thread`] or
    /// [`Self::kill`] first) — mirroring that trace files are only read
    /// after the instrumented process exits.
    pub fn into_trace(self) -> Trace {
        assert!(
            self.threads.iter().all(|t| t.terminated),
            "threads still live at trace read time"
        );
        let threads = self
            .threads
            .into_iter()
            .map(|t| decode_records(&t.file).expect("self-encoded records decode"))
            .collect();
        Trace {
            strings: self.strings,
            threads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(i: u64) -> (u32, u32, u64, Vec<u64>) {
        (0, 0, i, vec![i, i + 1])
    }

    #[test]
    fn on_full_flushes_and_preserves_order() {
        let mut s = TraceSession::new(DumpMode::OnFull, 64);
        let m = s.intern("a.B.c(0)");
        let th = s.start_thread();
        for i in 0..10 {
            let (_, start, id, objs) = path(i);
            s.record_path(th, m, start, id, objs);
        }
        assert!(s.stats().flushes > 0, "small buffer must flush");
        s.end_thread(th);
        let trace = s.into_trace();
        let ids: Vec<u64> = trace.threads[0]
            .iter()
            .map(|r| match r {
                TraceRecord::Path { path_id, .. } => *path_id,
                _ => panic!(),
            })
            .collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn kill_loses_staged_records_in_mode_1() {
        let mut s = TraceSession::new(DumpMode::OnFull, 1 << 20);
        let m = s.intern("a.B.c(0)");
        let th = s.start_thread();
        for i in 0..5 {
            let (_, start, id, objs) = path(i);
            s.record_path(th, m, start, id, objs);
        }
        s.kill();
        assert_eq!(s.stats().lost_records, 5);
        let trace = s.into_trace();
        assert!(trace.threads[0].is_empty());
    }

    #[test]
    fn kill_preserves_records_in_mode_2() {
        let mut s = TraceSession::new(DumpMode::MemoryMapped, 64);
        let m = s.intern("a.B.c(0)");
        let th = s.start_thread();
        for i in 0..50 {
            let (_, start, id, objs) = path(i);
            s.record_path(th, m, start, id, objs);
        }
        s.kill();
        assert_eq!(s.stats().lost_records, 0);
        assert!(s.stats().remaps > 0, "small segments must remap");
        let trace = s.into_trace();
        assert_eq!(trace.threads[0].len(), 50);
    }

    #[test]
    fn threads_appear_in_creation_order() {
        let mut s = TraceSession::new(DumpMode::OnFull, 1024);
        let sig = s.intern("x.Y.z(0)");
        let t1 = s.start_thread();
        let t2 = s.start_thread();
        s.record_cu_entry(t2, sig);
        s.record_cu_entry(t1, sig);
        s.end_thread(t1);
        s.end_thread(t2);
        let trace = s.into_trace();
        assert_eq!(trace.threads.len(), 2);
        // Both have one record; order of threads is creation order
        // regardless of record timing.
        assert_eq!(trace.threads[0].len(), 1);
        assert_eq!(trace.threads[1].len(), 1);
    }

    #[test]
    fn interning_is_stable() {
        let mut s = TraceSession::new(DumpMode::OnFull, 1024);
        let a = s.intern("one");
        let b = s.intern("two");
        let a2 = s.intern("one");
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn stats_count_record_kinds() {
        let mut s = TraceSession::new(DumpMode::OnFull, 1024);
        let m = s.intern("m");
        let th = s.start_thread();
        s.record_cu_entry(th, m);
        s.record_path(th, m, 0, 1, vec![5, 6, 7]);
        let st = s.stats();
        assert_eq!(st.cu_records, 1);
        assert_eq!(st.path_records, 1);
        assert_eq!(st.obj_ids, 3);
        s.end_thread(th);
    }
}
