//! Property tests of heap-snapshot invariants over randomly shaped object
//! registries.

use proptest::prelude::*;

use nimage_analysis::{analyze, AnalysisConfig};
use nimage_compiler::{compile, InlineConfig, InstrumentConfig};
use nimage_heap::{snapshot, HObjectKind, HeapBuildConfig, HeapSnapshot};
use nimage_ir::{Program, ProgramBuilder, TypeRef};

/// Builds a program whose initializer allocates `chains` chains of
/// `depth`-long node lists plus a `blobs`-element int array, all reachable
/// from static fields.
fn registry_program(chains: usize, depth: usize, blobs: usize) -> Program {
    let mut pb = ProgramBuilder::new();
    let node = pb.add_class("p.Node", None);
    let f_next = pb.add_instance_field(node, "next", TypeRef::Object(node));
    let f_val = pb.add_instance_field(node, "val", TypeRef::Int);
    let holder = pb.add_class("p.Holder", None);
    let f_heads = pb.add_static_field(holder, "HEADS", TypeRef::array_of(TypeRef::Object(node)));
    let f_blob = pb.add_static_field(holder, "BLOB", TypeRef::array_of(TypeRef::Int));
    let cl = pb.declare_clinit(holder);
    let mut f = pb.body(cl);
    let nchains = f.iconst(chains as i64);
    let heads = f.new_array(TypeRef::Object(node), nchains);
    let from = f.iconst(0);
    f.for_range(from, nchains, |f, c| {
        let head = f.new_object(node);
        f.put_field(head, f_val, c);
        let cur = f.copy(head);
        let from2 = f.iconst(0);
        let d = f.iconst(depth as i64);
        f.for_range(from2, d, |f, i| {
            let n = f.new_object(node);
            f.put_field(n, f_val, i);
            f.put_field(cur, f_next, n);
            f.assign(cur, n);
        });
        f.array_set(heads, c, head);
    });
    f.put_static(f_heads, heads);
    let blen = f.iconst(blobs as i64);
    let blob = f.new_array(TypeRef::Int, blen);
    f.put_static(f_blob, blob);
    f.ret(None);
    pb.finish_body(cl, f);

    let mainc = pb.add_class("p.Main", None);
    let main = pb.declare_static(mainc, "main", &[], Some(TypeRef::Int));
    let mut f = pb.body(main);
    let hs = f.get_static(f_heads);
    let z = f.iconst(0);
    let h0 = f.array_get(hs, z);
    let v = f.get_field(h0, f_val);
    let b = f.get_static(f_blob);
    let _ = b;
    f.ret(Some(v));
    pb.finish_body(main, f);
    pb.set_entry(main);
    pb.build().unwrap()
}

fn build_snapshot(p: &Program, cfg: &HeapBuildConfig) -> HeapSnapshot {
    let reach = analyze(p, &AnalysisConfig::default());
    let cp = compile(
        p,
        reach,
        &InlineConfig::default(),
        InstrumentConfig::NONE,
        None,
    );
    snapshot(p, &cp, cfg).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Snapshot structural invariants: unique entries, consistent index,
    /// acyclic parent chains ending in roots, sizes positive.
    #[test]
    fn snapshot_invariants(
        chains in 1usize..6,
        depth in 0usize..20,
        blobs in 0usize..64,
        seed in 0u64..8,
    ) {
        let p = registry_program(chains, depth, blobs);
        let cfg = HeapBuildConfig { clinit_seed: seed, ..HeapBuildConfig::default() };
        let snap = build_snapshot(&p, &cfg);
        let mut seen = std::collections::HashSet::new();
        for (i, e) in snap.entries().iter().enumerate() {
            prop_assert!(seen.insert(e.obj), "duplicate entry");
            prop_assert_eq!(snap.index_of(e.obj), Some(i));
            prop_assert!(e.size > 0);
            // Exactly one of parent/root.
            prop_assert!(e.parent.is_some() ^ e.root.is_some());
            // Parent chain terminates at a root.
            let path = snap.path_to_root(e.obj).expect("path exists");
            prop_assert!(path.last().unwrap().root.is_some());
            prop_assert!(path.len() <= snap.entries().len());
        }
        // Expected population: chains*(depth+1) nodes + heads array + blob.
        let nodes = snap
            .entries()
            .iter()
            .filter(|e| matches!(snap.heap().get(e.obj).kind, HObjectKind::Instance { .. }))
            .count();
        prop_assert_eq!(nodes, chains * (depth + 1));
    }

    /// PEA folding only removes objects; survivors keep relative order and
    /// never reference a folded parent.
    #[test]
    fn folding_is_a_subsequence(
        chains in 1usize..5,
        depth in 4usize..24,
        pea_seed in 0u64..8,
    ) {
        let p = registry_program(chains, depth, 16);
        let base = build_snapshot(&p, &HeapBuildConfig::default());
        let folded_cfg = HeapBuildConfig {
            pea_fold: true,
            pea_seed,
            pea_fold_ratio: 6,
            ..HeapBuildConfig::default()
        };
        let folded = build_snapshot(&p, &folded_cfg);
        prop_assert!(folded.entries().len() <= base.entries().len());
        // Survivor order is a subsequence of the base order.
        let base_order: Vec<_> = base.entries().iter().map(|e| e.obj).collect();
        let mut cursor = 0usize;
        for e in folded.entries() {
            while cursor < base_order.len() && base_order[cursor] != e.obj {
                cursor += 1;
            }
            prop_assert!(cursor < base_order.len(), "survivor kept base order");
        }
        for e in folded.entries() {
            if let Some((parent, _)) = e.parent {
                prop_assert!(!folded.folded().contains(&parent));
            }
        }
    }

    /// Initializer shuffles never change the *set* of snapshot contents,
    /// only the order/slots (same object population sizes).
    #[test]
    fn shuffle_preserves_population(
        seed_a in 0u64..16,
        seed_b in 0u64..16,
    ) {
        let p = registry_program(4, 6, 32);
        let a = build_snapshot(&p, &HeapBuildConfig { clinit_seed: seed_a, ..HeapBuildConfig::default() });
        let b = build_snapshot(&p, &HeapBuildConfig { clinit_seed: seed_b, ..HeapBuildConfig::default() });
        prop_assert_eq!(a.entries().len(), b.entries().len());
        prop_assert_eq!(a.total_bytes(), b.total_bytes());
    }
}
