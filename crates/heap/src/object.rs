//! Build-time heap objects and the heap arena.

use std::collections::HashMap;
use std::fmt;

use nimage_ir::{ClassId, FieldId, Program, TypeRef};

/// Index of an object in a [`BuildHeap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(pub u32);

impl ObjId {
    /// Returns the underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// A build-time value: the contents of locals, fields and array slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HValue {
    /// The null reference.
    Null,
    /// Boolean primitive.
    Bool(bool),
    /// 64-bit integer primitive.
    Int(i64),
    /// 64-bit float primitive.
    Double(f64),
    /// Reference to a heap object (instance, array, string, …).
    Ref(ObjId),
}

impl HValue {
    /// The default value for a field of the given declared type.
    pub fn default_for(ty: &TypeRef) -> HValue {
        match ty {
            TypeRef::Bool => HValue::Bool(false),
            TypeRef::Int => HValue::Int(0),
            TypeRef::Double => HValue::Double(0.0),
            _ => HValue::Null,
        }
    }

    /// The referenced object, if this is a reference.
    pub fn as_ref(&self) -> Option<ObjId> {
        match self {
            HValue::Ref(o) => Some(*o),
            _ => None,
        }
    }

    /// Whether the value is a primitive (including null).
    pub fn is_primitive(&self) -> bool {
        !matches!(self, HValue::Ref(_))
    }
}

/// The payload of one heap object.
#[derive(Debug, Clone, PartialEq)]
pub enum HObjectKind {
    /// A class instance; `fields` follows the layout order of
    /// [`Program::all_instance_fields`].
    Instance {
        /// Dynamic class.
        class: ClassId,
        /// Field values in layout order.
        fields: Vec<HValue>,
    },
    /// An array.
    Array {
        /// Element type.
        elem: TypeRef,
        /// Element values.
        elems: Vec<HValue>,
    },
    /// An immutable string (interned strings and runtime concatenations).
    Str(String),
    /// A boxed floating-point constant living in the binary's data section.
    Boxed(f64),
    /// An embedded resource blob.
    Blob {
        /// Resource path.
        name: String,
        /// Payload size in bytes.
        size: u32,
    },
}

/// One heap object.
#[derive(Debug, Clone, PartialEq)]
pub struct HObject {
    /// Object payload.
    pub kind: HObjectKind,
}

impl HObject {
    /// Size of the object in the heap-snapshot section, in bytes
    /// (16-byte header for instances, 24 for arrays/strings, plus payload).
    pub fn size_bytes(&self) -> u32 {
        match &self.kind {
            HObjectKind::Instance { fields, .. } => 16 + 8 * fields.len() as u32,
            HObjectKind::Array { elem, elems } => {
                let esz = match elem {
                    TypeRef::Bool => 1,
                    _ => 8,
                };
                24 + esz * elems.len() as u32
            }
            HObjectKind::Str(s) => 24 + s.len() as u32,
            HObjectKind::Boxed(_) => 16,
            HObjectKind::Blob { size, .. } => 24 + size,
        }
    }

    /// The fully qualified type name of this object.
    pub fn type_name(&self, program: &Program) -> String {
        match &self.kind {
            HObjectKind::Instance { class, .. } => program.class(*class).name.clone(),
            HObjectKind::Array { elem, .. } => format!("{}[]", program.type_name(elem)),
            HObjectKind::Str(_) => "String".to_string(),
            HObjectKind::Boxed(_) => "BoxedDouble".to_string(),
            HObjectKind::Blob { .. } => "Resource".to_string(),
        }
    }

    /// Outgoing references, in a well-defined order (field layout order for
    /// instances, index order for arrays).
    pub fn references(&self) -> Vec<(usize, ObjId)> {
        let slot_refs = |values: &[HValue]| {
            values
                .iter()
                .enumerate()
                .filter_map(|(i, v)| v.as_ref().map(|o| (i, o)))
                .collect::<Vec<_>>()
        };
        match &self.kind {
            HObjectKind::Instance { fields, .. } => slot_refs(fields),
            HObjectKind::Array { elems, .. } => slot_refs(elems),
            _ => vec![],
        }
    }
}

/// The arena of build-time objects plus static-field storage and the
/// interned-string table.
#[derive(Debug, Clone, Default)]
pub struct BuildHeap {
    objects: Vec<HObject>,
    statics: HashMap<FieldId, HValue>,
    interned: HashMap<String, ObjId>,
}

impl BuildHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of objects allocated so far.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Allocates an object and returns its id.
    pub fn alloc(&mut self, kind: HObjectKind) -> ObjId {
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(HObject { kind });
        id
    }

    /// Allocates a new instance of `class` with default field values.
    pub fn alloc_instance(&mut self, program: &Program, class: ClassId) -> ObjId {
        let fields = program
            .all_instance_fields(class)
            .iter()
            .map(|&f| HValue::default_for(&program.field(f).ty))
            .collect();
        self.alloc(HObjectKind::Instance { class, fields })
    }

    /// Allocates an array of `len` default-valued elements.
    pub fn alloc_array(&mut self, elem: TypeRef, len: usize) -> ObjId {
        let elems = vec![HValue::default_for(&elem); len];
        self.alloc(HObjectKind::Array { elem, elems })
    }

    /// Returns the interned string object for `s`, allocating it on first
    /// use (Java string interning).
    pub fn intern(&mut self, s: &str) -> ObjId {
        if let Some(&o) = self.interned.get(s) {
            return o;
        }
        let o = self.alloc(HObjectKind::Str(s.to_string()));
        self.interned.insert(s.to_string(), o);
        o
    }

    /// Whether `o` is an interned string.
    pub fn is_interned(&self, o: ObjId) -> bool {
        match &self.objects[o.index()].kind {
            HObjectKind::Str(s) => self.interned.get(s) == Some(&o),
            _ => false,
        }
    }

    /// Immutable access to an object.
    ///
    /// # Panics
    /// Panics if `o` is out of range.
    pub fn get(&self, o: ObjId) -> &HObject {
        &self.objects[o.index()]
    }

    /// Mutable access to an object.
    ///
    /// # Panics
    /// Panics if `o` is out of range.
    pub fn get_mut(&mut self, o: ObjId) -> &mut HObject {
        &mut self.objects[o.index()]
    }

    /// Current value of a static field (its declared default if never set).
    pub fn static_value(&self, program: &Program, field: FieldId) -> HValue {
        self.statics
            .get(&field)
            .copied()
            .unwrap_or_else(|| HValue::default_for(&program.field(field).ty))
    }

    /// Sets a static field.
    pub fn set_static(&mut self, field: FieldId, value: HValue) {
        self.statics.insert(field, value);
    }

    /// Iterates over all static fields explicitly set at build time.
    pub fn statics(&self) -> impl Iterator<Item = (FieldId, HValue)> + '_ {
        self.statics.iter().map(|(&f, &v)| (f, v))
    }

    /// All objects, indexed by [`ObjId`].
    pub fn objects(&self) -> &[HObject] {
        &self.objects
    }

    /// Iterates over the interned-string table.
    pub fn interned(&self) -> impl Iterator<Item = (&str, ObjId)> + '_ {
        self.interned.iter().map(|(s, &o)| (s.as_str(), o))
    }

    /// Reassembles a heap from its raw parts (the inverse of
    /// [`BuildHeap::objects`]/[`BuildHeap::statics`]/[`BuildHeap::interned`]),
    /// used when deserializing a persisted heap snapshot.
    pub fn from_parts(
        objects: Vec<HObject>,
        statics: HashMap<FieldId, HValue>,
        interned: HashMap<String, ObjId>,
    ) -> BuildHeap {
        BuildHeap {
            objects,
            statics,
            interned,
        }
    }

    /// The layout index of instance field `fid` in objects of class `class`.
    ///
    /// # Panics
    /// Panics if the field is not part of the class's layout.
    pub fn field_index(program: &Program, class: ClassId, fid: FieldId) -> usize {
        program
            .all_instance_fields(class)
            .iter()
            .position(|&f| f == fid)
            .unwrap_or_else(|| {
                panic!(
                    "field {} not in layout of {}",
                    program.field_signature(fid),
                    program.class(class).name
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimage_ir::ProgramBuilder;

    fn two_class_program() -> (Program, ClassId, ClassId, FieldId, FieldId) {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("t.A", None);
        let fa = pb.add_instance_field(a, "x", TypeRef::Int);
        let b = pb.add_class("t.B", Some(a));
        let fb = pb.add_instance_field(b, "next", TypeRef::Object(b));
        let p = pb.build().unwrap();
        (p, a, b, fa, fb)
    }

    #[test]
    fn instance_layout_includes_inherited_fields() {
        let (p, _a, b, fa, fb) = two_class_program();
        let mut h = BuildHeap::new();
        let o = h.alloc_instance(&p, b);
        match &h.get(o).kind {
            HObjectKind::Instance { fields, .. } => assert_eq!(fields.len(), 2),
            _ => panic!("not an instance"),
        }
        assert_eq!(BuildHeap::field_index(&p, b, fa), 0);
        assert_eq!(BuildHeap::field_index(&p, b, fb), 1);
    }

    #[test]
    fn interning_deduplicates() {
        let mut h = BuildHeap::new();
        let a = h.intern("hello");
        let b = h.intern("hello");
        let c = h.intern("world");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(h.is_interned(a));
        // A plain Str allocation is not interned.
        let d = h.alloc(HObjectKind::Str("hello".into()));
        assert!(!h.is_interned(d));
    }

    #[test]
    fn sizes_reflect_payload() {
        let (p, _a, b, _fa, _fb) = two_class_program();
        let mut h = BuildHeap::new();
        let o = h.alloc_instance(&p, b);
        assert_eq!(h.get(o).size_bytes(), 16 + 16);
        let arr = h.alloc_array(TypeRef::Int, 10);
        assert_eq!(h.get(arr).size_bytes(), 24 + 80);
        let barr = h.alloc_array(TypeRef::Bool, 10);
        assert_eq!(h.get(barr).size_bytes(), 24 + 10);
        let s = h.intern("abcd");
        assert_eq!(h.get(s).size_bytes(), 28);
    }

    #[test]
    fn references_follow_layout_order() {
        let (p, _a, b, _fa, fb) = two_class_program();
        let mut h = BuildHeap::new();
        let o1 = h.alloc_instance(&p, b);
        let o2 = h.alloc_instance(&p, b);
        let idx = BuildHeap::field_index(&p, b, fb);
        if let HObjectKind::Instance { fields, .. } = &mut h.get_mut(o1).kind {
            fields[idx] = HValue::Ref(o2);
        }
        assert_eq!(h.get(o1).references(), vec![(idx, o2)]);
        assert!(h.get(o2).references().is_empty());
    }

    #[test]
    fn statics_default_to_type_default() {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("t.A", None);
        let fi = pb.add_static_field(a, "I", TypeRef::Int);
        let fr = pb.add_static_field(a, "R", TypeRef::Object(a));
        let p = pb.build().unwrap();
        let mut h = BuildHeap::new();
        assert_eq!(h.static_value(&p, fi), HValue::Int(0));
        assert_eq!(h.static_value(&p, fr), HValue::Null);
        h.set_static(fi, HValue::Int(9));
        assert_eq!(h.static_value(&p, fi), HValue::Int(9));
    }
}
