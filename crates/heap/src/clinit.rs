//! Build-time execution of class initializers.
//!
//! Native Image runs the static initializers of reachable classes at image
//! build time and snapshots the resulting heap (Sec. 2). This module is the
//! corresponding build-time interpreter: it executes `<clinit>` bodies (and
//! anything they call) against a [`BuildHeap`].
//!
//! The execution order is the class discovery order of the reachability
//! analysis — except that classes sharing a *parallel-initialization group*
//! are permuted by the build seed, reproducing the paper's observation that
//! "the compilation is in some cases non-deterministic, and one reason is
//! that the class initializers may be executed in parallel during the build
//! process" (Sec. 2).

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use nimage_ir::{BinOp, Callee, FieldId, Instr, Intrinsic, MethodId, Program, Terminator, UnOp};

use crate::object::{BuildHeap, HObjectKind, HValue, ObjId};

/// Dynamic side effects observed while one class initializer (and
/// everything it transitively called) executed at build time.
///
/// "Foreign" means *outside the initializer's own allocation frontier*: a
/// write to an object that already existed when the initializer started —
/// i.e. state created by an earlier initializer. Those writes are exactly
/// what makes build-time snapshotting sensitive to init order (Sec. 2's
/// parallel-clinit non-determinism), so `nimage-verify`'s purity analysis
/// checks its static summaries against these observations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClinitEffects {
    /// Static fields read.
    pub statics_read: BTreeSet<FieldId>,
    /// Static fields written.
    pub statics_written: BTreeSet<FieldId>,
    /// Field/array writes to objects allocated before this initializer ran.
    pub foreign_writes: u64,
    /// I/O-like intrinsic invocations (`respond`).
    pub io_events: u64,
    /// `spawn` instructions reached (recorded no-ops at build time).
    pub spawn_events: u64,
}

/// Per-initializer [`ClinitEffects`], in execution order.
#[derive(Debug, Clone, Default)]
pub struct EffectLog {
    /// One entry per executed initializer: `(clinit method, effects)`.
    pub per_init: Vec<(MethodId, ClinitEffects)>,
}

/// Observation state threaded through build-time execution when effect
/// logging is on.
struct EffectSink {
    fx: ClinitEffects,
    /// Heap size when the current initializer started; any object with a
    /// smaller id is foreign to it.
    watermark: usize,
}

impl EffectSink {
    fn note_heap_write(&mut self, target: ObjId) {
        if target.index() < self.watermark {
            self.fx.foreign_writes += 1;
        }
    }
}

/// Remaining instruction budget for build-time execution.
///
/// Class initializers must terminate; the budget turns accidental infinite
/// loops into a [`ClinitError::BudgetExhausted`] instead of a hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepBudget(pub u64);

impl Default for StepBudget {
    fn default() -> Self {
        StepBudget(50_000_000)
    }
}

/// An error raised during build-time initializer execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClinitError {
    /// The step budget ran out (likely a non-terminating initializer).
    BudgetExhausted,
    /// Dereferenced null.
    NullDeref {
        /// Signature of the executing method.
        method: String,
    },
    /// Array index out of bounds.
    IndexOutOfBounds {
        /// Signature of the executing method.
        method: String,
        /// The offending index.
        index: i64,
        /// Array length.
        len: usize,
    },
    /// Integer division by zero.
    DivisionByZero {
        /// Signature of the executing method.
        method: String,
    },
    /// A value had the wrong kind for the operation (a builder bug).
    TypeMismatch {
        /// Signature of the executing method.
        method: String,
        /// Description of the mismatch.
        detail: String,
    },
    /// Virtual dispatch failed to resolve.
    NoSuchMethod {
        /// Receiver class name.
        class: String,
        /// Selector name.
        selector: String,
    },
    /// Call stack exceeded the depth limit.
    StackOverflow,
}

impl fmt::Display for ClinitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClinitError::BudgetExhausted => write!(f, "build-time step budget exhausted"),
            ClinitError::NullDeref { method } => write!(f, "null dereference in {method}"),
            ClinitError::IndexOutOfBounds { method, index, len } => {
                write!(f, "index {index} out of bounds (len {len}) in {method}")
            }
            ClinitError::DivisionByZero { method } => write!(f, "division by zero in {method}"),
            ClinitError::TypeMismatch { method, detail } => {
                write!(f, "type mismatch in {method}: {detail}")
            }
            ClinitError::NoSuchMethod { class, selector } => {
                write!(f, "no method {selector} on {class}")
            }
            ClinitError::StackOverflow => write!(f, "build-time call stack overflow"),
        }
    }
}

impl Error for ClinitError {}

const MAX_DEPTH: usize = 512;

/// Runs the given class initializers, in order, against a fresh heap.
///
/// `inits` is typically `Reachability::build_time_inits`, already permuted
/// by the caller according to the parallel-initialization groups (see
/// [`crate::HeapBuildConfig`]).
///
/// # Errors
/// Propagates the first [`ClinitError`] raised by any initializer.
pub fn run_initializers(
    program: &Program,
    inits: &[MethodId],
    budget: StepBudget,
) -> Result<BuildHeap, ClinitError> {
    let mut heap = BuildHeap::new();
    let mut budget = budget;
    for &m in inits {
        exec_method(program, &mut heap, m, vec![], &mut budget, 0)?;
    }
    Ok(heap)
}

/// [`run_initializers`] with per-initializer side-effect observation.
///
/// The resulting heap is identical to the unlogged run (logging only
/// observes); the [`EffectLog`] records, for each initializer in execution
/// order, the effects of the initializer and everything it called.
///
/// # Errors
/// Propagates the first [`ClinitError`] raised by any initializer.
pub fn run_initializers_logged(
    program: &Program,
    inits: &[MethodId],
    budget: StepBudget,
) -> Result<(BuildHeap, EffectLog), ClinitError> {
    let mut heap = BuildHeap::new();
    let mut budget = budget;
    let mut log = EffectLog::default();
    for &m in inits {
        let mut sink = Some(EffectSink {
            fx: ClinitEffects::default(),
            watermark: heap.len(),
        });
        exec_method_sunk(program, &mut heap, m, vec![], &mut budget, 0, &mut sink)?;
        log.per_init.push((m, sink.unwrap().fx));
    }
    Ok((heap, log))
}

/// Executes one method at build time. Public so the snapshot tests and the
/// microservice framework models can run helper methods directly.
///
/// # Errors
/// See [`ClinitError`].
pub fn exec_method(
    program: &Program,
    heap: &mut BuildHeap,
    method: MethodId,
    args: Vec<HValue>,
    budget: &mut StepBudget,
    depth: usize,
) -> Result<Option<HValue>, ClinitError> {
    exec_method_sunk(program, heap, method, args, budget, depth, &mut None)
}

fn exec_method_sunk(
    program: &Program,
    heap: &mut BuildHeap,
    method: MethodId,
    args: Vec<HValue>,
    budget: &mut StepBudget,
    depth: usize,
    sink: &mut Option<EffectSink>,
) -> Result<Option<HValue>, ClinitError> {
    if depth > MAX_DEPTH {
        return Err(ClinitError::StackOverflow);
    }
    let m = program.method(method);
    let sig = || program.method_signature(method);
    let mut locals = vec![HValue::Null; m.n_locals as usize];
    locals[..args.len()].copy_from_slice(&args);

    let mut block = 0usize;
    loop {
        let b = &m.blocks[block];
        for ins in &b.instrs {
            if budget.0 == 0 {
                return Err(ClinitError::BudgetExhausted);
            }
            budget.0 -= 1;
            exec_instr(program, heap, method, &mut locals, ins, budget, depth, sink)?;
        }
        match &b.terminator {
            Terminator::Ret(v) => return Ok(v.map(|l| locals[l.index()])),
            Terminator::Jump(t) => block = t.index(),
            Terminator::Br {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = match locals[cond.index()] {
                    HValue::Bool(b) => b,
                    other => {
                        return Err(ClinitError::TypeMismatch {
                            method: sig(),
                            detail: format!("branch on non-bool {other:?}"),
                        })
                    }
                };
                block = if c {
                    then_blk.index()
                } else {
                    else_blk.index()
                };
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn exec_instr(
    program: &Program,
    heap: &mut BuildHeap,
    method: MethodId,
    locals: &mut [HValue],
    ins: &Instr,
    budget: &mut StepBudget,
    depth: usize,
    sink: &mut Option<EffectSink>,
) -> Result<(), ClinitError> {
    let sig = || program.method_signature(method);
    let type_err = |detail: String| ClinitError::TypeMismatch {
        method: program.method_signature(method),
        detail,
    };
    match ins {
        Instr::ConstInt(d, v) => locals[d.index()] = HValue::Int(*v),
        Instr::ConstDouble(d, v) => locals[d.index()] = HValue::Double(*v),
        Instr::ConstBool(d, v) => locals[d.index()] = HValue::Bool(*v),
        Instr::ConstStr(d, s) => {
            let o = heap.intern(s);
            locals[d.index()] = HValue::Ref(o);
        }
        Instr::ConstNull(d) => locals[d.index()] = HValue::Null,
        Instr::Move(d, s) => locals[d.index()] = locals[s.index()],
        Instr::Bin(op, d, a, b) => {
            locals[d.index()] =
                eval_bin(*op, locals[a.index()], locals[b.index()]).ok_or_else(|| match op {
                    BinOp::Div | BinOp::Rem => ClinitError::DivisionByZero { method: sig() },
                    _ => type_err(format!("{op:?} on incompatible operands")),
                })?;
        }
        Instr::Un(op, d, a) => {
            locals[d.index()] = eval_un(*op, locals[a.index()])
                .ok_or_else(|| type_err(format!("{op:?} on incompatible operand")))?;
        }
        Instr::New(d, c) => {
            let o = heap.alloc_instance(program, *c);
            locals[d.index()] = HValue::Ref(o);
        }
        Instr::NewArray(d, elem, len) => {
            let n = as_int(locals[len.index()]).ok_or_else(|| type_err("array length".into()))?;
            if n < 0 {
                return Err(ClinitError::IndexOutOfBounds {
                    method: sig(),
                    index: n,
                    len: 0,
                });
            }
            let o = heap.alloc_array(elem.clone(), n as usize);
            locals[d.index()] = HValue::Ref(o);
        }
        Instr::GetField(d, obj, fid) => {
            let o = deref(locals[obj.index()], &sig)?;
            let idx = field_slot(program, heap, o, *fid, &sig)?;
            locals[d.index()] = instance_fields(heap, o)[idx];
        }
        Instr::PutField(obj, fid, src) => {
            let o = deref(locals[obj.index()], &sig)?;
            let idx = field_slot(program, heap, o, *fid, &sig)?;
            let v = locals[src.index()];
            if let Some(s) = sink {
                s.note_heap_write(o);
            }
            instance_fields_mut(heap, o)[idx] = v;
        }
        Instr::GetStatic(d, fid) => {
            if let Some(s) = sink {
                s.fx.statics_read.insert(*fid);
            }
            locals[d.index()] = heap.static_value(program, *fid);
        }
        Instr::PutStatic(fid, src) => {
            if let Some(s) = sink {
                s.fx.statics_written.insert(*fid);
            }
            heap.set_static(*fid, locals[src.index()]);
        }
        Instr::ArrayGet(d, arr, idx) => {
            let o = deref(locals[arr.index()], &sig)?;
            let i = as_int(locals[idx.index()]).ok_or_else(|| type_err("array index".into()))?;
            let elems = array_elems(heap, o, &sig)?;
            let len = elems.len();
            if i < 0 || i as usize >= len {
                return Err(ClinitError::IndexOutOfBounds {
                    method: sig(),
                    index: i,
                    len,
                });
            }
            locals[d.index()] = elems[i as usize];
        }
        Instr::ArraySet(arr, idx, src) => {
            let o = deref(locals[arr.index()], &sig)?;
            let i = as_int(locals[idx.index()]).ok_or_else(|| type_err("array index".into()))?;
            let v = locals[src.index()];
            if let Some(s) = sink {
                s.note_heap_write(o);
            }
            let elems = array_elems_mut(heap, o, &sig)?;
            let len = elems.len();
            if i < 0 || i as usize >= len {
                return Err(ClinitError::IndexOutOfBounds {
                    method: sig(),
                    index: i,
                    len,
                });
            }
            elems[i as usize] = v;
        }
        Instr::ArrayLen(d, arr) => {
            let o = deref(locals[arr.index()], &sig)?;
            let len = array_elems(heap, o, &sig)?.len();
            locals[d.index()] = HValue::Int(len as i64);
        }
        Instr::StrLen(d, s) => {
            let o = deref(locals[s.index()], &sig)?;
            let len = str_content(heap, o, &sig)?.len();
            locals[d.index()] = HValue::Int(len as i64);
        }
        Instr::StrCharAt(d, s, i) => {
            let o = deref(locals[s.index()], &sig)?;
            let idx = as_int(locals[i.index()]).ok_or_else(|| type_err("charAt index".into()))?;
            let content = str_content(heap, o, &sig)?;
            let ch = content
                .as_bytes()
                .get(idx as usize)
                .copied()
                .ok_or_else(|| ClinitError::IndexOutOfBounds {
                    method: sig(),
                    index: idx,
                    len: content.len(),
                })?;
            locals[d.index()] = HValue::Int(i64::from(ch));
        }
        Instr::StrConcat(d, a, b) => {
            let s = format!(
                "{}{}",
                display_value(heap, locals[a.index()]),
                display_value(heap, locals[b.index()])
            );
            let o = heap.alloc(HObjectKind::Str(s));
            locals[d.index()] = HValue::Ref(o);
        }
        Instr::Call { dst, callee, args } => {
            let argv: Vec<HValue> = args.iter().map(|l| locals[l.index()]).collect();
            let target = match callee {
                Callee::Static(m) => *m,
                Callee::Virtual { selector, .. } => {
                    let recv = deref(argv[0], &sig)?;
                    let class = match &heap.get(recv).kind {
                        HObjectKind::Instance { class, .. } => *class,
                        other => {
                            return Err(type_err(format!("virtual call on {other:?}")));
                        }
                    };
                    program.resolve_virtual(class, *selector).ok_or_else(|| {
                        ClinitError::NoSuchMethod {
                            class: program.class(class).name.clone(),
                            selector: program.selector_name(*selector).to_string(),
                        }
                    })?
                }
            };
            let ret = exec_method_sunk(program, heap, target, argv, budget, depth + 1, sink)?;
            if let Some(d) = dst {
                locals[d.index()] = ret.unwrap_or(HValue::Null);
            }
        }
        Instr::Intrinsic { dst, op, args } => {
            if *op == Intrinsic::Respond {
                if let Some(s) = sink {
                    s.fx.io_events += 1;
                }
            }
            let v = eval_intrinsic(*op, args.iter().map(|l| locals[l.index()]).collect());
            if let Some(d) = dst {
                locals[d.index()] = v.unwrap_or(HValue::Null);
            }
        }
        // Threads cannot be started at image build time; the spawn becomes
        // a recorded no-op, like Native Image rejecting runtime-only
        // operations in initializers that it then defers to run time.
        Instr::Spawn { .. } => {
            if let Some(s) = sink {
                s.fx.spawn_events += 1;
            }
        }
    }
    Ok(())
}

fn as_int(v: HValue) -> Option<i64> {
    match v {
        HValue::Int(i) => Some(i),
        _ => None,
    }
}

fn deref(v: HValue, sig: &dyn Fn() -> String) -> Result<ObjId, ClinitError> {
    v.as_ref()
        .ok_or_else(|| ClinitError::NullDeref { method: sig() })
}

fn field_slot(
    program: &Program,
    heap: &BuildHeap,
    o: ObjId,
    fid: nimage_ir::FieldId,
    sig: &dyn Fn() -> String,
) -> Result<usize, ClinitError> {
    match &heap.get(o).kind {
        HObjectKind::Instance { class, .. } => Ok(BuildHeap::field_index(program, *class, fid)),
        other => Err(ClinitError::TypeMismatch {
            method: sig(),
            detail: format!("field access on {other:?}"),
        }),
    }
}

fn instance_fields(heap: &BuildHeap, o: ObjId) -> &[HValue] {
    match &heap.get(o).kind {
        HObjectKind::Instance { fields, .. } => fields,
        _ => unreachable!("checked by field_slot"),
    }
}

fn instance_fields_mut(heap: &mut BuildHeap, o: ObjId) -> &mut [HValue] {
    match &mut heap.get_mut(o).kind {
        HObjectKind::Instance { fields, .. } => fields,
        _ => unreachable!("checked by field_slot"),
    }
}

fn array_elems<'h>(
    heap: &'h BuildHeap,
    o: ObjId,
    sig: &dyn Fn() -> String,
) -> Result<&'h [HValue], ClinitError> {
    match &heap.get(o).kind {
        HObjectKind::Array { elems, .. } => Ok(elems),
        other => Err(ClinitError::TypeMismatch {
            method: sig(),
            detail: format!("array access on {other:?}"),
        }),
    }
}

fn array_elems_mut<'h>(
    heap: &'h mut BuildHeap,
    o: ObjId,
    sig: &dyn Fn() -> String,
) -> Result<&'h mut Vec<HValue>, ClinitError> {
    match &mut heap.get_mut(o).kind {
        HObjectKind::Array { elems, .. } => Ok(elems),
        other => Err(ClinitError::TypeMismatch {
            method: sig(),
            detail: format!("array access on {other:?}"),
        }),
    }
}

fn str_content<'h>(
    heap: &'h BuildHeap,
    o: ObjId,
    sig: &dyn Fn() -> String,
) -> Result<&'h str, ClinitError> {
    match &heap.get(o).kind {
        HObjectKind::Str(s) => Ok(s),
        other => Err(ClinitError::TypeMismatch {
            method: sig(),
            detail: format!("string op on {other:?}"),
        }),
    }
}

fn display_value(heap: &BuildHeap, v: HValue) -> String {
    match v {
        HValue::Null => "null".to_string(),
        HValue::Bool(b) => b.to_string(),
        HValue::Int(i) => i.to_string(),
        HValue::Double(d) => format!("{d}"),
        HValue::Ref(o) => match &heap.get(o).kind {
            HObjectKind::Str(s) => s.clone(),
            other => format!("<{other:?}>"),
        },
    }
}

fn eval_bin(op: BinOp, a: HValue, b: HValue) -> Option<HValue> {
    use HValue::*;
    Some(match (op, a, b) {
        (BinOp::Add, Int(x), Int(y)) => Int(x.wrapping_add(y)),
        (BinOp::Sub, Int(x), Int(y)) => Int(x.wrapping_sub(y)),
        (BinOp::Mul, Int(x), Int(y)) => Int(x.wrapping_mul(y)),
        (BinOp::Div, Int(x), Int(y)) => {
            if y == 0 {
                return None;
            }
            Int(x.wrapping_div(y))
        }
        (BinOp::Rem, Int(x), Int(y)) => {
            if y == 0 {
                return None;
            }
            Int(x.wrapping_rem(y))
        }
        (BinOp::And, Int(x), Int(y)) => Int(x & y),
        (BinOp::Or, Int(x), Int(y)) => Int(x | y),
        (BinOp::Xor, Int(x), Int(y)) => Int(x ^ y),
        (BinOp::Shl, Int(x), Int(y)) => Int(x.wrapping_shl(y as u32)),
        (BinOp::Shr, Int(x), Int(y)) => Int(x.wrapping_shr(y as u32)),
        (BinOp::And, Bool(x), Bool(y)) => Bool(x && y),
        (BinOp::Or, Bool(x), Bool(y)) => Bool(x || y),
        (BinOp::Xor, Bool(x), Bool(y)) => Bool(x ^ y),
        (BinOp::Add, Double(x), Double(y)) => Double(x + y),
        (BinOp::Sub, Double(x), Double(y)) => Double(x - y),
        (BinOp::Mul, Double(x), Double(y)) => Double(x * y),
        (BinOp::Div, Double(x), Double(y)) => Double(x / y),
        (BinOp::Rem, Double(x), Double(y)) => Double(x % y),
        (BinOp::Lt, Int(x), Int(y)) => Bool(x < y),
        (BinOp::Le, Int(x), Int(y)) => Bool(x <= y),
        (BinOp::Gt, Int(x), Int(y)) => Bool(x > y),
        (BinOp::Ge, Int(x), Int(y)) => Bool(x >= y),
        (BinOp::Eq, Int(x), Int(y)) => Bool(x == y),
        (BinOp::Ne, Int(x), Int(y)) => Bool(x != y),
        (BinOp::Lt, Double(x), Double(y)) => Bool(x < y),
        (BinOp::Le, Double(x), Double(y)) => Bool(x <= y),
        (BinOp::Gt, Double(x), Double(y)) => Bool(x > y),
        (BinOp::Ge, Double(x), Double(y)) => Bool(x >= y),
        (BinOp::Eq, Double(x), Double(y)) => Bool(x == y),
        (BinOp::Ne, Double(x), Double(y)) => Bool(x != y),
        (BinOp::Eq, Bool(x), Bool(y)) => Bool(x == y),
        (BinOp::Ne, Bool(x), Bool(y)) => Bool(x != y),
        (BinOp::Eq, Ref(x), Ref(y)) => Bool(x == y),
        (BinOp::Ne, Ref(x), Ref(y)) => Bool(x != y),
        (BinOp::Eq, Null, Null) => Bool(true),
        (BinOp::Ne, Null, Null) => Bool(false),
        (BinOp::Eq, Ref(_), Null) | (BinOp::Eq, Null, Ref(_)) => Bool(false),
        (BinOp::Ne, Ref(_), Null) | (BinOp::Ne, Null, Ref(_)) => Bool(true),
        _ => return None,
    })
}

fn eval_un(op: UnOp, a: HValue) -> Option<HValue> {
    use HValue::*;
    Some(match (op, a) {
        (UnOp::Neg, Int(x)) => Int(x.wrapping_neg()),
        (UnOp::Neg, Double(x)) => Double(-x),
        (UnOp::Not, Bool(x)) => Bool(!x),
        (UnOp::IntToDouble, Int(x)) => Double(x as f64),
        (UnOp::DoubleToInt, Double(x)) => Int(x as i64),
        _ => return None,
    })
}

fn eval_intrinsic(op: Intrinsic, args: Vec<HValue>) -> Option<HValue> {
    let d = |i: usize| match args.get(i) {
        Some(HValue::Double(v)) => Some(*v),
        _ => None,
    };
    Some(match op {
        Intrinsic::Sqrt => HValue::Double(d(0)?.sqrt()),
        Intrinsic::Abs => HValue::Double(d(0)?.abs()),
        Intrinsic::Floor => HValue::Double(d(0)?.floor()),
        Intrinsic::Cos => HValue::Double(d(0)?.cos()),
        Intrinsic::Sin => HValue::Double(d(0)?.sin()),
        // `respond` is a runtime-only event; at build time it is inert.
        Intrinsic::Respond => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimage_ir::{ProgramBuilder, TypeRef};

    fn run_single_clinit(
        build: impl FnOnce(&mut ProgramBuilder, nimage_ir::ClassId) -> (),
    ) -> (Program, BuildHeap) {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("t.C", None);
        build(&mut pb, c);
        let p = pb.build().unwrap();
        let inits: Vec<MethodId> = p
            .class(p.class_by_name("t.C").unwrap())
            .clinit
            .into_iter()
            .collect();
        let heap = run_initializers(&p, &inits, StepBudget::default()).unwrap();
        (p, heap)
    }

    #[test]
    fn clinit_populates_statics_and_heap() {
        let (p, heap) = run_single_clinit(|pb, c| {
            let arr_f = pb.add_static_field(c, "TABLE", TypeRef::array_of(TypeRef::Int));
            let cl = pb.declare_clinit(c);
            let mut f = pb.body(cl);
            let n = f.iconst(4);
            let arr = f.new_array(TypeRef::Int, n);
            let from = f.iconst(0);
            f.for_range(from, n, |f, i| {
                let sq = f.mul(i, i);
                f.array_set(arr, i, sq);
            });
            f.put_static(arr_f, arr);
            f.ret(None);
            pb.finish_body(cl, f);
        });
        let fld = p.class(p.class_by_name("t.C").unwrap()).static_fields[0];
        let arr = heap.static_value(&p, fld).as_ref().unwrap();
        match &heap.get(arr).kind {
            HObjectKind::Array { elems, .. } => {
                let vals: Vec<i64> = elems
                    .iter()
                    .map(|v| match v {
                        HValue::Int(i) => *i,
                        _ => panic!(),
                    })
                    .collect();
                assert_eq!(vals, vec![0, 1, 4, 9]);
            }
            _ => panic!("expected array"),
        }
    }

    #[test]
    fn string_literals_are_interned_once() {
        let (_p, heap) = run_single_clinit(|pb, c| {
            let fa = pb.add_static_field(c, "A", TypeRef::Str);
            let fb = pb.add_static_field(c, "B", TypeRef::Str);
            let cl = pb.declare_clinit(c);
            let mut f = pb.body(cl);
            let s1 = f.sconst("shared");
            let s2 = f.sconst("shared");
            f.put_static(fa, s1);
            f.put_static(fb, s2);
            f.ret(None);
            pb.finish_body(cl, f);
        });
        // "shared" allocated exactly once.
        let strs = (0..heap.len())
            .filter(|&i| matches!(heap.get(ObjId(i as u32)).kind, HObjectKind::Str(_)))
            .count();
        assert_eq!(strs, 1);
    }

    #[test]
    fn infinite_loop_hits_budget() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("t.C", None);
        let cl = pb.declare_clinit(c);
        let mut f = pb.body(cl);
        f.while_loop(|f| f.bconst(true), |_f| {});
        f.ret(None);
        pb.finish_body(cl, f);
        let p = pb.build().unwrap();
        let err = run_initializers(&p, &[cl], StepBudget(10_000)).unwrap_err();
        assert_eq!(err, ClinitError::BudgetExhausted);
    }

    #[test]
    fn null_deref_is_reported() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("t.C", None);
        let fx = pb.add_instance_field(c, "x", TypeRef::Int);
        let cl = pb.declare_clinit(c);
        let mut f = pb.body(cl);
        let n = f.null();
        let _ = f.get_field(n, fx);
        f.ret(None);
        pb.finish_body(cl, f);
        let p = pb.build().unwrap();
        let err = run_initializers(&p, &[cl], StepBudget::default()).unwrap_err();
        assert!(matches!(err, ClinitError::NullDeref { .. }));
    }

    #[test]
    fn virtual_dispatch_at_build_time() {
        let mut pb = ProgramBuilder::new();
        let base = pb.add_class("t.Base", None);
        let sub = pb.add_class("t.Sub", Some(base));
        let _mb = pb.declare_virtual(base, "v", &[], Some(TypeRef::Int));
        let ms = pb.declare_virtual(sub, "v", &[], Some(TypeRef::Int));
        {
            let mut f = pb.body(_mb);
            let v = f.iconst(1);
            f.ret(Some(v));
            pb.finish_body(_mb, f);
        }
        {
            let mut f = pb.body(ms);
            let v = f.iconst(2);
            f.ret(Some(v));
            pb.finish_body(ms, f);
        }
        let holder = pb.add_class("t.H", None);
        let out = pb.add_static_field(holder, "OUT", TypeRef::Int);
        let cl = pb.declare_clinit(holder);
        let sel = pb.intern_selector("v", 0);
        let mut f = pb.body(cl);
        let o = f.new_object(sub);
        let r = f.call_virtual(base, sel, &[o], true).unwrap();
        f.put_static(out, r);
        f.ret(None);
        pb.finish_body(cl, f);
        let p = pb.build().unwrap();
        let heap = run_initializers(&p, &[cl], StepBudget::default()).unwrap();
        assert_eq!(heap.static_value(&p, out), HValue::Int(2));
    }

    #[test]
    fn concat_produces_non_interned_string() {
        let (_p, heap) = run_single_clinit(|pb, c| {
            let fs = pb.add_static_field(c, "S", TypeRef::Str);
            let cl = pb.declare_clinit(c);
            let mut f = pb.body(cl);
            let a = f.sconst("a");
            let n = f.iconst(7);
            let s = f.str_concat(a, n);
            f.put_static(fs, s);
            f.ret(None);
            pb.finish_body(cl, f);
        });
        let has_a7 = (0..heap.len())
            .any(|i| matches!(&heap.get(ObjId(i as u32)).kind, HObjectKind::Str(s) if s == "a7"));
        assert!(has_a7);
    }
}
