//! Heap-snapshot construction: root discovery, ordered object-graph
//! traversal, inclusion reasons and cross-build divergence modelling.

use std::collections::{HashMap, HashSet};

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use nimage_analysis::Reachability;
use nimage_compiler::{CompiledProgram, CuId};
use nimage_ir::{FieldId, Instr, MethodId, Program};
use nimage_par::parallel_map;

use crate::clinit::{run_initializers, ClinitError, StepBudget};
use crate::object::{BuildHeap, HObject, HObjectKind, ObjId};

/// Why an object became a root of the heap object graph (Sec. 5.3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum InclusionReason {
    /// Stored in a reachable static field (signature of the field).
    StaticField(String),
    /// Referenced by a constant pointer embedded in a method (signature of
    /// the method). Arises when partial escape analysis folds the parent
    /// object into compiled code.
    MethodConstant(String),
    /// A Java-style interned string.
    InternedString,
    /// Stored in the data section of the binary (e.g. boxed FP constants).
    DataSection,
    /// An embedded resource (resource path).
    Resource(String),
}

impl InclusionReason {
    /// The string form hashed by the *heap path* strategy (Algorithm 3).
    pub fn label(&self) -> String {
        match self {
            InclusionReason::StaticField(sig) => format!("StaticField:{sig}"),
            InclusionReason::MethodConstant(sig) => format!("MethodConstant:{sig}"),
            InclusionReason::InternedString => "InternedString".to_string(),
            InclusionReason::DataSection => "DataSection".to_string(),
            InclusionReason::Resource(name) => format!("Resource:{name}"),
        }
    }
}

/// How an object was first reached from its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParentLink {
    /// Through an instance field.
    Field(FieldId),
    /// Through an array slot.
    Index(u32),
}

/// One object included in the heap snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapEntry {
    /// The object.
    pub obj: ObjId,
    /// Size in the `.svm_heap` section, in bytes.
    pub size: u32,
    /// First discovery parent (`None` for roots) — the "first path" of
    /// Algorithm 3.
    pub parent: Option<(ObjId, ParentLink)>,
    /// Inclusion reason (`Some` for roots only).
    pub root: Option<InclusionReason>,
    /// The compilation unit whose scan pulled this object in, if any.
    /// Drives the default object order of the `.svm_heap` section.
    pub cu: Option<CuId>,
}

/// Build configuration governing heap-snapshot divergence across builds.
#[derive(Debug, Clone)]
pub struct HeapBuildConfig {
    /// Seed for the parallel class-initialization order.
    pub clinit_seed: u64,
    /// Whether initializers sharing a group are permuted at all.
    pub shuffle_parallel_inits: bool,
    /// Whether partial-escape-analysis folding removes objects from the
    /// snapshot (enabled for profile-guided optimized builds).
    pub pea_fold: bool,
    /// Seed for fold decisions.
    pub pea_seed: u64,
    /// Fold roughly one in `pea_fold_ratio` eligible objects.
    pub pea_fold_ratio: u32,
    /// Build-time execution budget.
    pub budget: StepBudget,
}

impl Default for HeapBuildConfig {
    fn default() -> Self {
        HeapBuildConfig {
            clinit_seed: 0,
            shuffle_parallel_inits: true,
            pea_fold: false,
            pea_seed: 0,
            pea_fold_ratio: 12,
            budget: StepBudget::default(),
        }
    }
}

/// The heap snapshot: the contents of the `.svm_heap` section, in default
/// order (CU order of the `.text` section, Sec. 2).
#[derive(Debug, Clone)]
pub struct HeapSnapshot {
    heap: BuildHeap,
    entries: Vec<SnapEntry>,
    index_of: HashMap<ObjId, usize>,
    folded: HashSet<ObjId>,
}

impl HeapSnapshot {
    /// Reassembles a snapshot from its raw parts (the inverse of
    /// [`HeapSnapshot::heap`]/[`HeapSnapshot::entries`]/[`HeapSnapshot::folded`]),
    /// recomputing the index; used when deserializing a persisted
    /// snapshot.
    pub fn from_parts(
        heap: BuildHeap,
        entries: Vec<SnapEntry>,
        folded: HashSet<ObjId>,
    ) -> HeapSnapshot {
        let index_of = entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.obj, i))
            .collect();
        HeapSnapshot {
            heap,
            entries,
            index_of,
            folded,
        }
    }

    /// The build-time heap backing the snapshot.
    pub fn heap(&self) -> &BuildHeap {
        &self.heap
    }

    /// Snapshot entries in default order.
    pub fn entries(&self) -> &[SnapEntry] {
        &self.entries
    }

    /// The snapshot entry for `obj`, if included.
    pub fn entry(&self, obj: ObjId) -> Option<&SnapEntry> {
        self.index_of.get(&obj).map(|&i| &self.entries[i])
    }

    /// Default-order index of `obj`, if included.
    pub fn index_of(&self, obj: ObjId) -> Option<usize> {
        self.index_of.get(&obj).copied()
    }

    /// Objects removed from the snapshot by PEA folding; at run time their
    /// contents live in compiled code, not in `.svm_heap`.
    pub fn folded(&self) -> &HashSet<ObjId> {
        &self.folded
    }

    /// Total `.svm_heap` payload in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| u64::from(e.size)).sum()
    }

    /// Walks the first-discovery path from `obj` to its root, yielding
    /// `(object, link taken from parent)` pairs, ending at the root entry.
    /// Returns `None` if `obj` is not in the snapshot.
    pub fn path_to_root(&self, obj: ObjId) -> Option<Vec<&SnapEntry>> {
        let mut path = vec![self.entry(obj)?];
        let mut cur = self.entry(obj)?;
        while let Some((parent, _)) = cur.parent {
            cur = self.entry(parent)?;
            path.push(cur);
            if path.len() > self.entries.len() {
                return None; // defensive: corrupted parent chain
            }
        }
        Some(path)
    }
}

/// Orders the build-time initializers, permuting classes that share a
/// parallel-initialization group (seeded, deterministic per seed).
///
/// Public so verification clients (`nimage-verify`'s clinit-purity audit)
/// can replay the exact initializer order a snapshot used and collect a
/// dynamic effect log for it.
pub fn init_order(program: &Program, reach: &Reachability, cfg: &HeapBuildConfig) -> Vec<MethodId> {
    let mut inits = reach.build_time_inits.clone();
    if !cfg.shuffle_parallel_inits {
        return inits;
    }
    // Group positions by init group; shuffle members within each group that
    // has more than one, leaving the position multiset unchanged.
    let mut by_group: HashMap<u32, Vec<usize>> = HashMap::new();
    for (i, &m) in inits.iter().enumerate() {
        let class = program.method(m).owner;
        by_group
            .entry(program.class(class).init_group)
            .or_default()
            .push(i);
    }
    let mut groups: Vec<(u32, Vec<usize>)> = by_group.into_iter().collect();
    groups.sort();
    let mut rng = SmallRng::seed_from_u64(cfg.clinit_seed);
    let orig = inits.clone();
    for (_g, positions) in groups {
        if positions.len() < 2 {
            continue;
        }
        let mut members: Vec<MethodId> = positions.iter().map(|&i| orig[i]).collect();
        members.shuffle(&mut rng);
        for (&pos, &m) in positions.iter().zip(members.iter()) {
            inits[pos] = m;
        }
    }
    inits
}

/// Runs the reachable class initializers and snapshots the heap.
///
/// # Errors
/// Propagates build-time execution failures ([`ClinitError`]).
pub fn snapshot(
    program: &Program,
    compiled: &CompiledProgram,
    cfg: &HeapBuildConfig,
) -> Result<HeapSnapshot, ClinitError> {
    snapshot_with_threads(program, compiled, cfg, 1)
}

/// [`snapshot`] with intra-stage parallelism over the reachability walk.
///
/// Class-initializer execution and root discovery stay serial (both
/// mutate the build heap — interning, boxing, resource allocation); only
/// the read-only encoding walk from the discovered roots fans out across
/// workers, partitioned by root. See [`traverse_roots`] for why the merge
/// is bit-identical to the serial walk.
///
/// # Errors
/// Propagates build-time execution failures ([`ClinitError`]).
pub fn snapshot_with_threads(
    program: &Program,
    compiled: &CompiledProgram,
    cfg: &HeapBuildConfig,
    n_threads: usize,
) -> Result<HeapSnapshot, ClinitError> {
    let reach = &compiled.reachability;
    let inits = init_order(program, reach, cfg);
    let mut heap = run_initializers(program, &inits, cfg.budget)?;

    let mut rooted_fields: HashSet<FieldId> = HashSet::new();
    let mut boxed_cache: HashMap<u64, ObjId> = HashMap::new();
    let mut roots: Vec<(ObjId, InclusionReason, Option<CuId>)> = vec![];

    // Phase 1: scan compiled code, CU by CU in default .text order. This is
    // what makes the default .svm_heap order follow the .text order.
    for cu in &compiled.cus {
        for node in &cu.nodes {
            let method = program.method(node.method);
            for block in &method.blocks {
                for ins in &block.instrs {
                    match ins {
                        Instr::GetStatic(_, f) | Instr::PutStatic(f, _)
                            if rooted_fields.insert(*f) =>
                        {
                            if let Some(o) = heap.static_value(program, *f).as_ref() {
                                roots.push((
                                    o,
                                    InclusionReason::StaticField(program.field_signature(*f)),
                                    Some(cu.id),
                                ));
                            }
                        }
                        Instr::ConstStr(_, s) => {
                            let o = heap.intern(s);
                            roots.push((o, InclusionReason::InternedString, Some(cu.id)));
                        }
                        Instr::ConstDouble(_, v) => {
                            let bits = v.to_bits();
                            let o = *boxed_cache
                                .entry(bits)
                                .or_insert_with(|| heap.alloc(HObjectKind::Boxed(*v)));
                            roots.push((o, InclusionReason::DataSection, Some(cu.id)));
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    // Phase 2: remaining reachable static fields (reachable through
    // non-compiled paths, e.g. only from initializers).
    for &f in &reach.static_fields {
        if rooted_fields.insert(f) {
            if let Some(o) = heap.static_value(program, f).as_ref() {
                roots.push((
                    o,
                    InclusionReason::StaticField(program.field_signature(f)),
                    None,
                ));
            }
        }
    }

    // Phase 3: embedded resources.
    for r in &program.resources {
        let o = heap.alloc(HObjectKind::Blob {
            name: r.name.clone(),
            size: r.size,
        });
        roots.push((o, InclusionReason::Resource(r.name.clone()), None));
    }

    let (entries, index_of) = traverse_roots(&heap, program, &roots, n_threads);

    let mut snap = HeapSnapshot {
        heap,
        entries,
        index_of,
        folded: HashSet::new(),
    };

    if cfg.pea_fold {
        apply_pea_folding(program, compiled, cfg, &mut snap);
    }

    Ok(snap)
}

/// The parent link by which `hobj`'s reference in `slot` was reached, or
/// `None` for object kinds whose children carry no link (and are never
/// pushed — their `references()` are empty anyway).
fn child_link(program: &Program, hobj: &HObject, slot: usize) -> Option<ParentLink> {
    match &hobj.kind {
        HObjectKind::Instance { class, .. } => {
            let layout = program.all_instance_fields(*class);
            Some(ParentLink::Field(layout[slot]))
        }
        HObjectKind::Array { .. } => Some(ParentLink::Index(slot as u32)),
        _ => None,
    }
}

/// Include `obj` (if new) and everything reachable from it, depth-first
/// in field/slot order — Native Image's "well-defined order".
#[allow(clippy::too_many_arguments)]
fn include(
    heap: &BuildHeap,
    program: &Program,
    entries: &mut Vec<SnapEntry>,
    index_of: &mut HashMap<ObjId, usize>,
    obj: ObjId,
    reason: &InclusionReason,
    cu: Option<CuId>,
) {
    if index_of.contains_key(&obj) {
        return;
    }
    let mut stack: Vec<(ObjId, Option<(ObjId, ParentLink)>)> = vec![(obj, None)];
    let mut first = true;
    while let Some((o, parent)) = stack.pop() {
        if index_of.contains_key(&o) {
            continue;
        }
        let entry = SnapEntry {
            obj: o,
            size: heap.get(o).size_bytes(),
            parent,
            root: if first { Some(reason.clone()) } else { None },
            cu,
        };
        first = false;
        index_of.insert(o, entries.len());
        entries.push(entry);

        let hobj = heap.get(o);
        let refs = hobj.references();
        // Push in reverse so the DFS visits slots in ascending order.
        for &(slot, child) in refs.iter().rev() {
            if index_of.contains_key(&child) {
                continue;
            }
            let Some(link) = child_link(program, hobj, slot) else {
                continue;
            };
            stack.push((child, Some((o, link))));
        }
    }
}

/// Every object reachable from `root` in the full heap graph (set
/// membership only; visit order is irrelevant here).
fn full_closure(heap: &BuildHeap, root: ObjId) -> Vec<ObjId> {
    let mut seen: HashSet<ObjId> = HashSet::new();
    let mut out: Vec<ObjId> = vec![];
    let mut stack = vec![root];
    while let Some(o) = stack.pop() {
        if !seen.insert(o) {
            continue;
        }
        out.push(o);
        for &(_, child) in heap.get(o).references().iter().rev() {
            if !seen.contains(&child) {
                stack.push(child);
            }
        }
    }
    out
}

/// The DFS of [`include`] for root `i`, pruned by the first-claim map:
/// an object belongs to root `i` exactly when `i` is the lowest root
/// index that reaches it. Objects claimed by earlier roots block the
/// walk at the same points where the serial walk's global `index_of`
/// check would, so emit order, parent links and the root-reason
/// attribution all match the serial pass.
fn pruned_dfs(
    heap: &BuildHeap,
    program: &Program,
    roots: &[(ObjId, InclusionReason, Option<CuId>)],
    i: usize,
    first_claim: &HashMap<ObjId, u32>,
) -> Vec<SnapEntry> {
    let (obj, reason, cu) = &roots[i];
    let i = i as u32;
    if first_claim.get(obj) != Some(&i) {
        // An earlier root (or an earlier duplicate of this one) already
        // owns the root object; the serial walk would emit nothing here.
        return vec![];
    }
    let mut out: Vec<SnapEntry> = vec![];
    let mut local: HashSet<ObjId> = HashSet::new();
    let mut stack: Vec<(ObjId, Option<(ObjId, ParentLink)>)> = vec![(*obj, None)];
    let mut first = true;
    while let Some((o, parent)) = stack.pop() {
        if local.contains(&o) {
            continue;
        }
        out.push(SnapEntry {
            obj: o,
            size: heap.get(o).size_bytes(),
            parent,
            root: if first { Some(reason.clone()) } else { None },
            cu: *cu,
        });
        first = false;
        local.insert(o);

        let hobj = heap.get(o);
        let refs = hobj.references();
        for &(slot, child) in refs.iter().rev() {
            // Mirrors the serial `index_of` check: claimed by an earlier
            // root, or already emitted by this one.
            if first_claim.get(&child).is_some_and(|&c| c < i) || local.contains(&child) {
                continue;
            }
            let Some(link) = child_link(program, hobj, slot) else {
                continue;
            };
            stack.push((child, Some((o, link))));
        }
    }
    out
}

/// Builds the snapshot's object table from the discovered roots.
///
/// Serial reference: run [`include`] root by root against a shared
/// `index_of`. Parallel: (pass A) compute each root's *full* reachable
/// closure concurrently, (merge) fold the closures in root order into a
/// `first_claim` map — an object's claimant is the lowest root index
/// that reaches it, which is exactly the root whose serial walk would
/// emit it, because any path from that root to the object passes only
/// through objects with the same claimant — then (pass B) re-walk each
/// root concurrently, pruned by `first_claim`, and concatenate the
/// per-root entry lists in root order. Every step's output order is
/// fixed by root order and field/slot order, never by scheduling, so
/// the result is bit-identical to the serial reference.
fn traverse_roots(
    heap: &BuildHeap,
    program: &Program,
    roots: &[(ObjId, InclusionReason, Option<CuId>)],
    n_threads: usize,
) -> (Vec<SnapEntry>, HashMap<ObjId, usize>) {
    let mut entries: Vec<SnapEntry> = vec![];
    let mut index_of: HashMap<ObjId, usize> = HashMap::new();
    // Per-root traversals are short; under the measured cutoff the
    // two-pass fan-out costs more than it saves, so take the serial
    // reference path directly.
    let n_threads = nimage_par::workers_for(
        n_threads,
        roots.len(),
        nimage_par::cutoff::SNAPSHOT_MIN_ROOTS,
    );
    if n_threads <= 1 || roots.len() < 2 {
        for (obj, reason, cu) in roots {
            include(
                heap,
                program,
                &mut entries,
                &mut index_of,
                *obj,
                reason,
                *cu,
            );
        }
        return (entries, index_of);
    }

    let closures = parallel_map(n_threads, roots.len(), |i| full_closure(heap, roots[i].0));
    let mut first_claim: HashMap<ObjId, u32> = HashMap::new();
    for (i, closure) in closures.iter().enumerate() {
        for &o in closure {
            first_claim.entry(o).or_insert(i as u32);
        }
    }

    let per_root = parallel_map(n_threads, roots.len(), |i| {
        pruned_dfs(heap, program, roots, i, &first_claim)
    });
    for list in per_root {
        for e in list {
            index_of.insert(e.obj, entries.len());
            entries.push(e);
        }
    }
    (entries, index_of)
}

/// Removes a build-dependent subset of non-root instances from the snapshot,
/// modelling partial escape analysis constant-folding object contents into
/// compiled code: "some objects could be stack-allocated in one binary but
/// not in another, or the accesses to their fields could be constant-folded,
/// eliminating the need to store the respective objects" (Sec. 2).
///
/// Children of a folded object are re-rooted with a `MethodConstant` reason
/// — they are now referenced by a constant pointer embedded in the code of
/// the CU that pulled in the folded parent.
fn apply_pea_folding(
    program: &Program,
    compiled: &CompiledProgram,
    cfg: &HeapBuildConfig,
    snap: &mut HeapSnapshot,
) {
    let ratio = u64::from(cfg.pea_fold_ratio.max(1));
    let mut folded: HashSet<ObjId> = HashSet::new();
    // PGO-driven optimization — and hence PEA divergence — concentrates in
    // the code compiled later (colder, larger compilation units), whose
    // objects sit in the later part of the traversal. Folding past the
    // first third reproduces the paper's observation that encounter-order
    // identities survive for the early prefix but degrade beyond the first
    // divergence point.
    let fold_start = snap.entries.len() / 3;
    // Scalar replacement overwhelmingly targets *leaf* objects (no
    // references into the rest of the snapshot); interior objects fold far
    // more rarely, because their fields escape into their children.
    let parents: HashSet<ObjId> = snap
        .entries
        .iter()
        .filter_map(|e| e.parent.map(|(p, _)| p))
        .collect();
    // Reference in-degree over the snapshot graph (all edges, not just the
    // first-discovery parent). An object with two inbound references is
    // *aliased*: folding it would constant-fold one path while the other
    // still expects a materialized object, so it must never fold. This is
    // the invariant `nimage-verify`'s PEA-soundness audit re-checks
    // independently.
    let mut inbound: HashMap<ObjId, u32> = HashMap::new();
    for e in &snap.entries {
        for (_, child) in snap.heap.get(e.obj).references() {
            if snap.index_of.contains_key(&child) {
                *inbound.entry(child).or_insert(0) += 1;
            }
        }
    }
    for (i, e) in snap.entries.iter().enumerate() {
        if i < fold_start || e.root.is_some() {
            continue;
        }
        if !matches!(snap.heap.get(e.obj).kind, HObjectKind::Instance { .. }) {
            continue;
        }
        if inbound.get(&e.obj).copied().unwrap_or(0) != 1 {
            continue;
        }
        let divisor = if parents.contains(&e.obj) {
            // Interior objects rarely fold: their fields escape through
            // their children.
            ratio * 8
        } else {
            (ratio / 3).max(1)
        };
        // Build-dependent fold decision: the hash mixes the seed with the
        // entry's *position*, which itself differs across builds.
        let h = fnv_mix(
            cfg.pea_seed,
            i as u64,
            snap.heap.get(e.obj).size_bytes() as u64,
        );
        if h.is_multiple_of(divisor) {
            folded.insert(e.obj);
        }
    }
    if folded.is_empty() {
        return;
    }

    // Re-root children of folded objects; a chain of folded parents
    // collapses onto the nearest surviving ancestor rule: child of a folded
    // object becomes a MethodConstant root.
    let reroot_reason = |cu: Option<CuId>| {
        let sig = cu
            .map(|c| program.method_signature(compiled.cu(c).root))
            .unwrap_or_else(|| "<build-time>".to_string());
        InclusionReason::MethodConstant(sig)
    };
    let mut new_entries: Vec<SnapEntry> = vec![];
    for e in &snap.entries {
        if folded.contains(&e.obj) {
            continue;
        }
        let mut e = e.clone();
        if let Some((p, _)) = e.parent {
            if folded.contains(&p) {
                e.parent = None;
                e.root = Some(reroot_reason(e.cu));
            }
        }
        new_entries.push(e);
    }
    snap.index_of = new_entries
        .iter()
        .enumerate()
        .map(|(i, e)| (e.obj, i))
        .collect();
    snap.entries = new_entries;
    snap.folded = folded;
}

fn fnv_mix(a: u64, b: u64, c: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in [a, b, c] {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimage_analysis::{analyze, AnalysisConfig};
    use nimage_compiler::{compile, InlineConfig, InstrumentConfig};
    use nimage_ir::{ProgramBuilder, TypeRef};

    /// A program whose clinit builds a small linked structure reachable from
    /// a static field, with string and double constants in code.
    fn snapshot_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let node = pb.add_class("t.Node", None);
        let f_next = pb.add_instance_field(node, "next", TypeRef::Object(node));
        let f_val = pb.add_instance_field(node, "val", TypeRef::Int);

        let holder = pb.add_class("t.Holder", None);
        let f_head = pb.add_static_field(holder, "HEAD", TypeRef::Object(node));
        let cl = pb.declare_clinit(holder);
        let mut f = pb.body(cl);
        let n1 = f.new_object(node);
        let n2 = f.new_object(node);
        let v1 = f.iconst(1);
        let v2 = f.iconst(2);
        f.put_field(n1, f_val, v1);
        f.put_field(n2, f_val, v2);
        f.put_field(n1, f_next, n2);
        f.put_static(f_head, n1);
        f.ret(None);
        pb.finish_body(cl, f);

        let main_cls = pb.add_class("t.Main", None);
        let main = pb.declare_static(main_cls, "main", &[], Some(TypeRef::Int));
        let mut f = pb.body(main);
        let _greeting = f.sconst("hello snapshot");
        let _pi = f.dconst(3.5);
        let head = f.get_static(f_head);
        let v = f.get_field(head, f_val);
        f.ret(Some(v));
        pb.finish_body(main, f);
        pb.set_entry(main);
        pb.add_resource("META-INF/app.txt", 100);
        pb.build().unwrap()
    }

    fn build(p: &Program, cfg: &HeapBuildConfig) -> HeapSnapshot {
        let reach = analyze(p, &AnalysisConfig::default());
        let cp = compile(
            p,
            reach,
            &InlineConfig::default(),
            InstrumentConfig::NONE,
            None,
        );
        snapshot(p, &cp, cfg).unwrap()
    }

    #[test]
    fn snapshot_contains_rooted_graph_strings_doubles_resources() {
        let p = snapshot_program();
        let snap = build(&p, &HeapBuildConfig::default());
        // 2 nodes + 1 interned string + 1 boxed double + 1 resource blob.
        assert_eq!(snap.entries().len(), 5);
        let reasons: Vec<_> = snap
            .entries()
            .iter()
            .filter_map(|e| e.root.clone())
            .collect();
        assert!(reasons
            .iter()
            .any(|r| matches!(r, InclusionReason::StaticField(s) if s == "t.Holder.HEAD")));
        assert!(reasons.contains(&InclusionReason::InternedString));
        assert!(reasons.contains(&InclusionReason::DataSection));
        assert!(reasons
            .iter()
            .any(|r| matches!(r, InclusionReason::Resource(_))));
    }

    #[test]
    fn parent_chain_reaches_root() {
        let p = snapshot_program();
        let snap = build(&p, &HeapBuildConfig::default());
        // Find the non-root node (n2): parent must be n1 through `next`.
        let child = snap
            .entries()
            .iter()
            .find(|e| e.parent.is_some())
            .expect("a child entry");
        let path = snap.path_to_root(child.obj).unwrap();
        assert_eq!(path.len(), 2);
        assert!(path.last().unwrap().root.is_some());
        match child.parent {
            Some((_, ParentLink::Field(fid))) => {
                assert_eq!(p.field_signature(fid), "t.Node.next");
            }
            other => panic!("unexpected parent link {other:?}"),
        }
    }

    #[test]
    fn snapshot_is_deterministic_for_same_seed() {
        let p = snapshot_program();
        let a = build(&p, &HeapBuildConfig::default());
        let b = build(&p, &HeapBuildConfig::default());
        assert_eq!(a.entries(), b.entries());
    }

    #[test]
    fn unreachable_build_time_garbage_is_excluded() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("t.C", None);
        let fld = pb.add_static_field(c, "KEEP", TypeRef::Object(c));
        let cl = pb.declare_clinit(c);
        let mut f = pb.body(cl);
        let keep = f.new_object(c);
        let _garbage = f.new_object(c);
        f.put_static(fld, keep);
        f.ret(None);
        pb.finish_body(cl, f);
        let main_cls = pb.add_class("t.Main", None);
        let main = pb.declare_static(main_cls, "main", &[], Some(TypeRef::Int));
        let mut f = pb.body(main);
        let v = f.get_static(fld);
        let one = f.iconst(1);
        let _ = v;
        f.ret(Some(one));
        pb.finish_body(main, f);
        pb.set_entry(main);
        let p = pb.build().unwrap();
        let snap = build(&p, &HeapBuildConfig::default());
        assert_eq!(snap.entries().len(), 1, "only the rooted object survives");
    }

    #[test]
    fn pea_folding_removes_objects_and_reroots_children() {
        let mut pb = ProgramBuilder::new();
        let node = pb.add_class("t.Node", None);
        let f_next = pb.add_instance_field(node, "next", TypeRef::Object(node));
        let holder = pb.add_class("t.Holder", None);
        let f_head = pb.add_static_field(holder, "HEAD", TypeRef::Object(node));
        let cl = pb.declare_clinit(holder);
        let mut f = pb.body(cl);
        // A long chain so that some interior node folds for some seed.
        let head = f.new_object(node);
        let cur = f.copy(head);
        let from = f.iconst(0);
        let to = f.iconst(63);
        f.for_range(from, to, |f, _i| {
            let next = f.new_object(node);
            f.put_field(cur, f_next, next);
            f.assign(cur, next);
        });
        f.put_static(f_head, head);
        f.ret(None);
        pb.finish_body(cl, f);
        let main_cls = pb.add_class("t.Main", None);
        let main = pb.declare_static(main_cls, "main", &[], Some(TypeRef::Int));
        let mut f = pb.body(main);
        let h = f.get_static(f_head);
        let n = f.get_field(h, f_next);
        let one = f.iconst(1);
        let _ = n;
        f.ret(Some(one));
        pb.finish_body(main, f);
        pb.set_entry(main);
        let p = pb.build().unwrap();

        let base = build(&p, &HeapBuildConfig::default());
        let folded_cfg = HeapBuildConfig {
            pea_fold: true,
            pea_seed: 7,
            pea_fold_ratio: 4,
            ..HeapBuildConfig::default()
        };
        let folded = build(&p, &folded_cfg);
        assert!(folded.entries().len() < base.entries().len());
        assert!(!folded.folded().is_empty());
        // Some child of a folded object must have been re-rooted.
        assert!(folded
            .entries()
            .iter()
            .any(|e| matches!(e.root, Some(InclusionReason::MethodConstant(_)))));
        // No entry's parent refers to a folded object.
        for e in folded.entries() {
            if let Some((parent, _)) = e.parent {
                assert!(!folded.folded().contains(&parent));
            }
        }
    }

    #[test]
    fn parallel_init_groups_shuffle_with_seed() {
        // Two classes in the same group append to a shared static array; the
        // resulting order depends on the seed.
        let mut pb = ProgramBuilder::new();
        let reg = pb.add_class("t.Registry", None);
        let slot_a = pb.add_static_field(reg, "A", TypeRef::Int);
        let slot_n = pb.add_static_field(reg, "N", TypeRef::Int);
        let mk = |pb: &mut ProgramBuilder, name: &str, tag: i64| {
            let c = pb.add_class(name, None);
            let cl = pb.declare_clinit(c);
            let mut f = pb.body(cl);
            let n = f.get_static(slot_n);
            let zero = f.iconst(0);
            let is_first = f.eq(n, zero);
            f.if_then(is_first, |f| {
                let t = f.iconst(tag);
                f.put_static(slot_a, t);
            });
            let one = f.iconst(1);
            let n1 = f.add(n, one);
            f.put_static(slot_n, n1);
            f.ret(None);
            pb.finish_body(cl, f);
            c
        };
        let c1 = mk(&mut pb, "t.P1", 1);
        let c2 = mk(&mut pb, "t.P2", 2);
        pb.set_init_group(c1, 99);
        pb.set_init_group(c2, 99);
        let main_cls = pb.add_class("t.Main", None);
        let main = pb.declare_static(main_cls, "main", &[], Some(TypeRef::Int));
        let mut f = pb.body(main);
        // Reference both classes' members so both clinits run.
        let v = f.get_static(slot_a);
        let o1 = f.new_object(c1);
        let o2 = f.new_object(c2);
        let _ = (o1, o2);
        f.ret(Some(v));
        pb.finish_body(main, f);
        pb.set_entry(main);
        let p = pb.build().unwrap();
        let reach = analyze(&p, &AnalysisConfig::default());

        let order_for = |seed: u64| {
            let cfg = HeapBuildConfig {
                clinit_seed: seed,
                ..HeapBuildConfig::default()
            };
            init_order(&p, &reach, &cfg)
        };
        let orders: Vec<_> = (0..16).map(order_for).collect();
        let distinct: std::collections::HashSet<_> = orders.iter().collect();
        assert!(distinct.len() > 1, "seeds must produce different orders");
        // Same seed → same order.
        assert_eq!(order_for(3), order_for(3));
    }
}

/// Aggregate statistics over a heap snapshot, grouped the way the paper
/// describes snapshot composition: "many String literals, Class instances,
/// metadata byte arrays, and maps that dominate the size" (Sec. 7.2).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotStats {
    /// Object and byte counts of class instances.
    pub instances: (usize, u64),
    /// Object and byte counts of arrays.
    pub arrays: (usize, u64),
    /// Object and byte counts of strings.
    pub strings: (usize, u64),
    /// Object and byte counts of boxed constants.
    pub boxed: (usize, u64),
    /// Object and byte counts of resource blobs.
    pub blobs: (usize, u64),
    /// Root counts per inclusion-reason kind: static field, method
    /// constant, interned string, data section, resource.
    pub roots: [usize; 5],
}

impl SnapshotStats {
    /// Total object count.
    pub fn objects(&self) -> usize {
        self.instances.0 + self.arrays.0 + self.strings.0 + self.boxed.0 + self.blobs.0
    }

    /// Total bytes.
    pub fn bytes(&self) -> u64 {
        self.instances.1 + self.arrays.1 + self.strings.1 + self.boxed.1 + self.blobs.1
    }
}

impl HeapSnapshot {
    /// Computes composition statistics for the snapshot.
    pub fn stats(&self) -> SnapshotStats {
        let mut s = SnapshotStats::default();
        for e in &self.entries {
            let bucket = match &self.heap.get(e.obj).kind {
                HObjectKind::Instance { .. } => &mut s.instances,
                HObjectKind::Array { .. } => &mut s.arrays,
                HObjectKind::Str(_) => &mut s.strings,
                HObjectKind::Boxed(_) => &mut s.boxed,
                HObjectKind::Blob { .. } => &mut s.blobs,
            };
            bucket.0 += 1;
            bucket.1 += u64::from(e.size);
            if let Some(reason) = &e.root {
                let idx = match reason {
                    InclusionReason::StaticField(_) => 0,
                    InclusionReason::MethodConstant(_) => 1,
                    InclusionReason::InternedString => 2,
                    InclusionReason::DataSection => 3,
                    InclusionReason::Resource(_) => 4,
                };
                s.roots[idx] += 1;
            }
        }
        s
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;
    use nimage_analysis::{analyze, AnalysisConfig};
    use nimage_compiler::{compile, InlineConfig, InstrumentConfig};
    use nimage_ir::{ProgramBuilder, TypeRef};

    #[test]
    fn stats_cover_every_entry_and_root() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("t.C", None);
        let fld = pb.add_static_field(c, "ARR", TypeRef::array_of(TypeRef::Int));
        let cl = pb.declare_clinit(c);
        let mut f = pb.body(cl);
        let n = f.iconst(16);
        let a = f.new_array(TypeRef::Int, n);
        f.put_static(fld, a);
        f.ret(None);
        pb.finish_body(cl, f);
        let mc = pb.add_class("t.Main", None);
        let main = pb.declare_static(mc, "main", &[], Some(TypeRef::Int));
        let mut f = pb.body(main);
        let _s = f.sconst("hello stats");
        let _d = f.dconst(2.5);
        let arr = f.get_static(fld);
        let z = f.iconst(0);
        let v = f.array_get(arr, z);
        f.ret(Some(v));
        pb.finish_body(main, f);
        pb.set_entry(main);
        pb.add_resource("cfg", 64);
        let p = pb.build().unwrap();
        let reach = analyze(&p, &AnalysisConfig::default());
        let cp = compile(
            &p,
            reach,
            &InlineConfig::default(),
            InstrumentConfig::NONE,
            None,
        );
        let snap = snapshot(&p, &cp, &HeapBuildConfig::default()).unwrap();

        let stats = snap.stats();
        assert_eq!(stats.objects(), snap.entries().len());
        assert_eq!(stats.bytes(), snap.total_bytes());
        assert_eq!(stats.arrays.0, 1);
        assert_eq!(stats.strings.0, 1);
        assert_eq!(stats.boxed.0, 1);
        assert_eq!(stats.blobs.0, 1);
        // Roots: 1 static field, 1 interned string, 1 data section, 1 resource.
        assert_eq!(stats.roots, [1, 0, 1, 1, 1]);
    }
}
