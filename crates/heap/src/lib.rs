//! # nimage-heap
//!
//! The build-time heap of the nimage toolchain: the stand-in for Native
//! Image's *heap snapshotting* (Sec. 2 of the paper).
//!
//! At image build time, the class initializers of all reachable classes are
//! executed by a small interpreter ([`run_initializers`]); the resulting
//! object graph is then traversed in a well-defined order
//! ([`snapshot`]) starting from
//!
//! * static fields referenced by compiled code (reason `StaticField`),
//! * interned string literals in compiled code (reason `InternedString`),
//! * floating-point constants materialized in the data section
//!   (reason `DataSection`),
//! * embedded resources (reason `Resource`),
//!
//! yielding a [`HeapSnapshot`] whose **default object order follows the CU
//! order of the `.text` section** — "objects reachable from a CU A are
//! stored before objects reachable from another CU B that is stored after A"
//! (Sec. 2). Each snapshot entry records its first discovery parent and its
//! inclusion reason, which is exactly the information Algorithm 3 (*heap
//! path*) consumes.
//!
//! Cross-build divergence — the central difficulty the paper's Sec. 5
//! addresses — is modelled by [`HeapBuildConfig`]:
//!
//! * `clinit_seed` shuffles the execution order of class initializers within
//!   the same parallel-initialization group (non-deterministic parallel
//!   class initialization, Sec. 2);
//! * `pea_fold_seed` removes a build-dependent subset of leaf objects from
//!   the snapshot of optimized builds (partial-escape-analysis
//!   constant-folding, Sec. 2).

#![warn(missing_docs)]

mod clinit;
mod object;
mod snapshot;

pub use clinit::{
    exec_method, run_initializers, run_initializers_logged, ClinitEffects, ClinitError, EffectLog,
    StepBudget,
};
pub use object::{BuildHeap, HObject, HObjectKind, HValue, ObjId};
pub use snapshot::{
    init_order, snapshot, snapshot_with_threads, HeapBuildConfig, HeapSnapshot, InclusionReason,
    ParentLink, SnapEntry, SnapshotStats,
};
