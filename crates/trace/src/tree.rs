//! Span-tree reconstruction and the two views the engine needs:
//!
//! * the **physical** per-thread forest — spans nested exactly as they
//!   executed, the basis for exclusive stage times (parent minus direct
//!   children, the attribution `StageClock` used to hand-roll);
//! * the **logical** root list — spans/instants flagged `root` detached
//!   to the top level, so memoized work that physically ran under
//!   whichever caller got there first compares identically across runs.
//!   [`canonical_shape`] renders that list order-independently for the
//!   determinism tests.

use crate::{Event, EventKind};
use std::collections::BTreeMap;

/// What a [`SpanNode`] reconstructs: a span or a point event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A `Begin`/`End` pair (or a `Begin` left open at collection).
    Span,
    /// An `Instant`.
    Instant,
}

/// One node of a reconstructed span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span/event name.
    pub name: &'static str,
    /// Detail string recorded with the `Begin`/`Instant`.
    pub detail: String,
    /// Start timestamp (ns since tracer epoch).
    pub start_ns: u64,
    /// End timestamp; equals `start_ns` for instants. A span whose `End`
    /// was never recorded (collection mid-flight, ring overflow) closes
    /// at its thread's last observed timestamp.
    pub end_ns: u64,
    /// Span or instant.
    pub kind: NodeKind,
    /// Whether the event was flagged root (logical detachment).
    pub root: bool,
    /// Physically nested children, in recording order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Wall-clock covered by the node, children included.
    #[must_use]
    pub fn inclusive_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Wall-clock net of direct child *spans* (instants have no extent).
    #[must_use]
    pub fn exclusive_ns(&self) -> u64 {
        let child_ns: u64 = self
            .children
            .iter()
            .filter(|c| c.kind == NodeKind::Span)
            .map(SpanNode::inclusive_ns)
            .sum();
        self.inclusive_ns().saturating_sub(child_ns)
    }
}

/// Builds one thread's physical forest. Tolerant of truncation: an
/// unmatched `End` is dropped, an unclosed `Begin` closes at the
/// thread's last timestamp.
fn thread_forest(events: &[Event]) -> Vec<SpanNode> {
    let last_ts = events.last().map_or(0, |e| e.t_ns);
    let mut top: Vec<SpanNode> = Vec::new();
    let mut stack: Vec<SpanNode> = Vec::new();
    let attach = |stack: &mut Vec<SpanNode>, top: &mut Vec<SpanNode>, node: SpanNode| match stack
        .last_mut()
    {
        Some(parent) => parent.children.push(node),
        None => top.push(node),
    };
    for ev in events {
        match ev.kind {
            EventKind::Begin => stack.push(SpanNode {
                name: ev.name,
                detail: ev.detail.clone(),
                start_ns: ev.t_ns,
                end_ns: ev.t_ns,
                kind: NodeKind::Span,
                root: ev.root,
                children: Vec::new(),
            }),
            EventKind::End => {
                if let Some(mut node) = stack.pop() {
                    node.end_ns = ev.t_ns;
                    attach(&mut stack, &mut top, node);
                }
            }
            EventKind::Instant => {
                let node = SpanNode {
                    name: ev.name,
                    detail: ev.detail.clone(),
                    start_ns: ev.t_ns,
                    end_ns: ev.t_ns,
                    kind: NodeKind::Instant,
                    root: ev.root,
                    children: Vec::new(),
                };
                attach(&mut stack, &mut top, node);
            }
        }
    }
    while let Some(mut node) = stack.pop() {
        node.end_ns = node.end_ns.max(last_ts);
        attach(&mut stack, &mut top, node);
    }
    top
}

/// The physical view: per-thread top-level nodes, nested as executed.
#[must_use]
pub fn physical_forest(threads: &[Vec<Event>]) -> Vec<Vec<SpanNode>> {
    threads.iter().map(|t| thread_forest(t)).collect()
}

/// The logical view: every `root`-flagged node is detached to the top
/// level (keeping its own subtree); non-root physical-top-level nodes
/// stay top-level. The returned order is scheduling-dependent — compare
/// via [`canonical_shape`].
#[must_use]
pub fn logical_roots(threads: &[Vec<Event>]) -> Vec<SpanNode> {
    fn detach(node: SpanNode, out: &mut Vec<SpanNode>) -> Option<SpanNode> {
        let mut kept = SpanNode {
            children: Vec::new(),
            ..node
        };
        for child in node.children {
            if let Some(c) = detach(child, out) {
                kept.children.push(c);
            }
        }
        if kept.root {
            out.push(kept);
            None
        } else {
            Some(kept)
        }
    }
    let mut roots = Vec::new();
    for thread in physical_forest(threads) {
        for node in thread {
            if let Some(kept) = detach(node, &mut roots) {
                roots.push(kept);
            }
        }
    }
    roots
}

/// Canonical, timestamp-free rendering of a logical root list: each node
/// becomes `(name|detail children…)` with children (and the roots
/// themselves) sorted lexicographically, so two traces of the same
/// workload render identically regardless of thread placement or
/// completion order. Two runs have the same span-tree *shape* iff their
/// canonical strings are equal.
#[must_use]
pub fn canonical_shape(roots: &[SpanNode]) -> String {
    fn render(node: &SpanNode) -> String {
        let mut children: Vec<String> = node.children.iter().map(render).collect();
        children.sort_unstable();
        let tag = match node.kind {
            NodeKind::Span => "",
            NodeKind::Instant => "!",
        };
        format!("({tag}{}|{} {})", node.name, node.detail, children.join(""))
    }
    let mut rendered: Vec<String> = roots.iter().map(render).collect();
    rendered.sort_unstable();
    rendered.join("\n")
}

/// Aggregate wall-clock per event name, from the *physical* nesting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageAgg {
    /// Σ inclusive duration over every span with this name.
    pub inclusive_ns: u64,
    /// Σ exclusive duration (inclusive minus direct child spans) — the
    /// stage-time attribution: nested stages never double-count.
    pub exclusive_ns: u64,
    /// Number of spans (or instants) with this name.
    pub count: u64,
}

/// Walks the physical forest and sums per-name inclusive/exclusive
/// durations and counts. Instants contribute only to `count`.
#[must_use]
pub fn aggregate(threads: &[Vec<Event>]) -> BTreeMap<&'static str, StageAgg> {
    fn walk(node: &SpanNode, out: &mut BTreeMap<&'static str, StageAgg>) {
        let agg = out.entry(node.name).or_default();
        agg.count += 1;
        if node.kind == NodeKind::Span {
            agg.inclusive_ns += node.inclusive_ns();
            agg.exclusive_ns += node.exclusive_ns();
        }
        for c in &node.children {
            walk(c, out);
        }
    }
    let mut out = BTreeMap::new();
    for thread in physical_forest(threads) {
        for node in &thread {
            walk(node, &mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, name: &'static str, t_ns: u64) -> Event {
        Event {
            kind,
            name,
            detail: String::new(),
            t_ns,
            root: false,
        }
    }

    fn root_ev(kind: EventKind, name: &'static str, detail: &str, t_ns: u64) -> Event {
        Event {
            kind,
            name,
            detail: detail.to_string(),
            t_ns,
            root: true,
        }
    }

    /// run[0..100] containing compile[10..40] containing lower[20..25],
    /// plus a page-fault instant.
    fn nested_thread() -> Vec<Event> {
        vec![
            ev(EventKind::Begin, "run", 0),
            ev(EventKind::Begin, "compile", 10),
            ev(EventKind::Begin, "lower", 20),
            ev(EventKind::End, "lower", 25),
            ev(EventKind::End, "compile", 40),
            ev(EventKind::Instant, "page-fault", 50),
            ev(EventKind::End, "run", 100),
        ]
    }

    #[test]
    fn physical_nesting_and_exclusive_times_are_exact() {
        let threads = vec![nested_thread()];
        let forest = physical_forest(&threads);
        assert_eq!(forest[0].len(), 1);
        let run = &forest[0][0];
        assert_eq!(run.name, "run");
        assert_eq!(run.children.len(), 2); // compile + instant
        let agg = aggregate(&threads);
        assert_eq!(agg["run"].inclusive_ns, 100);
        assert_eq!(agg["run"].exclusive_ns, 70); // 100 - compile's 30
        assert_eq!(agg["compile"].inclusive_ns, 30);
        assert_eq!(agg["compile"].exclusive_ns, 25); // 30 - lower's 5
        assert_eq!(agg["lower"].exclusive_ns, 5);
        assert_eq!(agg["page-fault"].count, 1);
        assert_eq!(agg["page-fault"].inclusive_ns, 0);
        // Invariant: Σ exclusive == Σ top-level inclusive.
        let sum_excl: u64 = agg.values().map(|a| a.exclusive_ns).sum();
        assert_eq!(sum_excl, 100);
    }

    #[test]
    fn unclosed_span_closes_at_last_timestamp_and_stray_end_is_dropped() {
        let threads = vec![vec![
            ev(EventKind::End, "ghost", 1),
            ev(EventKind::Begin, "run", 5),
            ev(EventKind::Instant, "page-fault", 30),
        ]];
        let forest = physical_forest(&threads);
        assert_eq!(forest[0].len(), 1);
        assert_eq!(forest[0][0].name, "run");
        assert_eq!(forest[0][0].end_ns, 30);
        assert_eq!(aggregate(&threads)["run"].inclusive_ns, 25);
    }

    #[test]
    fn root_nodes_detach_logically_but_count_physically() {
        // cell span physically containing a memoized (root) compile span.
        let threads = vec![vec![
            root_ev(EventKind::Begin, "cell", "w=a", 0),
            root_ev(EventKind::Begin, "compile", "w=a", 10),
            ev(EventKind::End, "compile", 40),
            ev(EventKind::End, "cell", 100),
        ]];
        let roots = logical_roots(&threads);
        assert_eq!(roots.len(), 2, "compile detaches beside cell");
        let cell = roots.iter().find(|n| n.name == "cell").unwrap();
        assert!(cell.children.is_empty(), "detached child removed");
        // Physical exclusive attribution still subtracts the nested span.
        let agg = aggregate(&threads);
        assert_eq!(agg["cell"].exclusive_ns, 70);
    }

    #[test]
    fn canonical_shape_is_order_and_thread_independent() {
        let a = vec![
            vec![
                root_ev(EventKind::Begin, "cell", "w=a s=cu", 0),
                ev(EventKind::Instant, "page-fault", 3),
                ev(EventKind::End, "cell", 9),
            ],
            vec![
                root_ev(EventKind::Begin, "cell", "w=a s=heap", 1),
                ev(EventKind::End, "cell", 7),
            ],
        ];
        // Same logical work: opposite thread placement, different times.
        let b = vec![
            vec![
                root_ev(EventKind::Begin, "cell", "w=a s=heap", 100),
                ev(EventKind::End, "cell", 260),
            ],
            vec![
                root_ev(EventKind::Begin, "cell", "w=a s=cu", 5),
                ev(EventKind::Instant, "page-fault", 6),
                ev(EventKind::End, "cell", 7),
            ],
        ];
        assert_eq!(
            canonical_shape(&logical_roots(&a)),
            canonical_shape(&logical_roots(&b))
        );
        // A missing instant changes the shape.
        let c = vec![
            vec![
                root_ev(EventKind::Begin, "cell", "w=a s=cu", 0),
                ev(EventKind::End, "cell", 9),
            ],
            vec![
                root_ev(EventKind::Begin, "cell", "w=a s=heap", 1),
                ev(EventKind::End, "cell", 7),
            ],
        ];
        assert_ne!(
            canonical_shape(&logical_roots(&a)),
            canonical_shape(&logical_roots(&c))
        );
    }
}
