//! # nimage-trace — span-based structured tracing and metrics
//!
//! The observability layer behind the engine's stage timings, the
//! `nimage bench --trace-out` Chrome-trace export and the versioned JSON
//! report (DESIGN.md §14).
//!
//! ## Model
//!
//! A [`Tracer`] is a cheap-to-clone handle that is either *disabled* (a
//! single `Option` check on every call — the compiled-in fast path) or
//! *enabled*, in which case every thread that records through it appends
//! to its own fixed-capacity [`Event`] ring. Recording is lock-free on
//! the hot path: the owning thread is the only writer of its ring, and
//! publication happens with one release store of the length. Buffers are
//! merged at collection time ([`Tracer::events`]), never during a run, so
//! recording perturbs neither scheduling nor results.
//!
//! Three event kinds exist: `Begin`/`End` pairs delimit *spans* (strict
//! stack discipline per thread, enforced by the [`Span`] RAII guard) and
//! `Instant` marks a point event (a page fault, a disk-cache hit). Spans
//! and instants may be flagged *root*: work that is memoized and may
//! physically execute under whichever caller got there first (so its
//! physical parent is scheduling-dependent) is detached to the top level
//! in the *logical* tree view, which makes the logical span forest a
//! deterministic function of the workload. The *physical* per-thread
//! nesting is kept too — exclusive stage times are derived from it
//! (parent minus children), exactly the attribution the old `StageClock`
//! computed by hand.
//!
//! Determinism rules, and how the engine's spans obey them, are spelled
//! out in DESIGN.md §14.

#![warn(missing_docs)]

pub mod chrome;
pub mod metrics;
pub mod tree;

pub use chrome::chrome_trace_json;
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot};
pub use tree::{
    aggregate, canonical_shape, logical_roots, physical_forest, NodeKind, SpanNode, StageAgg,
};

use std::cell::{RefCell, UnsafeCell};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default per-thread event-ring capacity (events, not bytes).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// What an [`Event`] marks: the start of a span, its end, or a point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (matched by a later `End` on the same thread).
    Begin,
    /// The most recently opened span on this thread closed.
    End,
    /// A point event with no duration (page fault, cache hit, ...).
    Instant,
}

/// One recorded event. Timestamps are nanoseconds since the tracer's
/// epoch (the `Instant` taken when the tracer was created), so events
/// from different threads of the same tracer share a clock.
#[derive(Debug, Clone)]
pub struct Event {
    /// Begin / End / Instant.
    pub kind: EventKind,
    /// Static name — span names are the vocabulary of the trace (stage
    /// names like `"compile"`, event names like `"page-fault"`).
    pub name: &'static str,
    /// Free-form deterministic detail (`"workload=Sieve strategy=cu"`);
    /// empty when there is nothing to add. Must never embed addresses,
    /// timings or other run-varying data: the logical tree shape,
    /// including details, is asserted identical across runs.
    pub detail: String,
    /// Nanoseconds since the tracer epoch.
    pub t_ns: u64,
    /// Detach this span/instant to the top level of the *logical* tree
    /// (memoized work whose physical parent is scheduling-dependent).
    pub root: bool,
}

/// One thread's event ring. The owning thread is the only writer; any
/// thread may snapshot concurrently (acquire the published length, read
/// only below it).
struct ThreadCell {
    slots: Box<[UnsafeCell<MaybeUninit<Event>>]>,
    /// Number of initialized slots; release-stored by the owner after
    /// writing a slot, acquire-loaded by readers.
    len: AtomicUsize,
    /// Events discarded because the ring was full.
    dropped: AtomicU64,
}

// Soundness: `slots[i]` is written exactly once, by the owning thread,
// before `len` is release-stored past `i`; readers only dereference
// slots below an acquire-loaded `len`. A slot is therefore never read
// and written concurrently.
unsafe impl Send for ThreadCell {}
unsafe impl Sync for ThreadCell {}

impl ThreadCell {
    fn new(capacity: usize) -> ThreadCell {
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || UnsafeCell::new(MaybeUninit::uninit()));
        ThreadCell {
            slots: slots.into_boxed_slice(),
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Owner-thread only.
    fn push(&self, ev: Event) {
        let i = self.len.load(Ordering::Relaxed);
        if i >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        unsafe { (*self.slots[i].get()).write(ev) };
        self.len.store(i + 1, Ordering::Release);
    }

    /// Any thread; non-destructive.
    fn snapshot(&self) -> Vec<Event> {
        let n = self.len.load(Ordering::Acquire);
        (0..n)
            .map(|i| unsafe { (*self.slots[i].get()).assume_init_ref() }.clone())
            .collect()
    }
}

impl Drop for ThreadCell {
    fn drop(&mut self) {
        let n = *self.len.get_mut();
        for slot in &mut self.slots[..n] {
            unsafe { slot.get_mut().assume_init_drop() };
        }
    }
}

/// Summary of a trace for the JSON report: how many threads recorded,
/// how many events survived, how many were dropped on ring overflow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Threads that recorded at least one event.
    pub threads: usize,
    /// Total events across all rings.
    pub events: u64,
    /// Events discarded because a ring was full.
    pub dropped: u64,
}

struct TracerInner {
    id: u64,
    capacity: usize,
    epoch: Instant,
    /// All rings ever registered, in registration order (stable tids
    /// for the Chrome export).
    cells: Mutex<Vec<Arc<ThreadCell>>>,
    metrics: MetricsRegistry,
}

static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's ring per live tracer, keyed by tracer id.
    static TLS_CELLS: RefCell<Vec<(u64, Arc<ThreadCell>)>> = const { RefCell::new(Vec::new()) };
}

impl TracerInner {
    /// The calling thread's ring for this tracer, registering one on
    /// first use.
    fn cell(self: &Arc<Self>) -> Arc<ThreadCell> {
        TLS_CELLS.with(|tls| {
            let mut tls = tls.borrow_mut();
            if let Some((_, cell)) = tls.iter().find(|(id, _)| *id == self.id) {
                return cell.clone();
            }
            // Drop entries whose tracer died (the registry holds the
            // only other strong ref, so count == 1 means ours is last).
            if tls.len() >= 32 {
                tls.retain(|(_, c)| Arc::strong_count(c) > 1);
            }
            let cell = Arc::new(ThreadCell::new(self.capacity));
            self.cells
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(cell.clone());
            tls.push((self.id, cell.clone()));
            cell
        })
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn record(self: &Arc<Self>, kind: EventKind, name: &'static str, detail: String, root: bool) {
        let t_ns = self.now_ns();
        self.cell().push(Event {
            kind,
            name,
            detail,
            t_ns,
            root,
        });
    }
}

/// A handle for recording spans, instants and metrics. Clones share the
/// same buffers. [`Tracer::disabled`] (also the `Default`) records
/// nothing and costs one `Option` check per call — the fast path the
/// engine compiles in everywhere tracing is optional.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Deliberately state-free: a Tracer inside a Debug-fingerprinted
        // struct must never perturb the fingerprint (cache neutrality).
        f.write_str(match &self.inner {
            Some(_) => "Tracer(enabled)",
            None => "Tracer(disabled)",
        })
    }
}

impl Tracer {
    /// An enabled tracer with the default ring capacity.
    #[must_use]
    pub fn new() -> Tracer {
        Tracer::with_capacity(DEFAULT_CAPACITY)
    }

    /// An enabled tracer whose per-thread rings hold `capacity` events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
                capacity: capacity.max(16),
                epoch: Instant::now(),
                cells: Mutex::new(Vec::new()),
                metrics: MetricsRegistry::new(),
            })),
        }
    }

    /// The no-op tracer: every recording call is a single branch.
    #[must_use]
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// Whether this handle records anything at all. Call sites that
    /// would allocate to build a `detail` string should check this
    /// first.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span; it closes when the returned guard drops. The guard
    /// is `!Send`: a span must begin and end on the same thread.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        self.span_inner(name, String::new(), false)
    }

    /// [`Tracer::span`] with a detail string (built lazily — the closure
    /// only runs when the tracer is enabled).
    #[inline]
    pub fn span_with(&self, name: &'static str, detail: impl FnOnce() -> String) -> Span {
        let d = if self.inner.is_some() {
            detail()
        } else {
            String::new()
        };
        self.span_inner(name, d, false)
    }

    /// A *root* span: detached to the top level of the logical tree
    /// (memoized work whose physical parent is scheduling-dependent).
    #[inline]
    pub fn root_span(&self, name: &'static str, detail: impl FnOnce() -> String) -> Span {
        let d = if self.inner.is_some() {
            detail()
        } else {
            String::new()
        };
        self.span_inner(name, d, true)
    }

    fn span_inner(&self, name: &'static str, detail: String, root: bool) -> Span {
        if let Some(inner) = &self.inner {
            inner.record(EventKind::Begin, name, detail, root);
        }
        Span {
            inner: self.inner.clone(),
            name,
            _not_send: std::marker::PhantomData,
        }
    }

    /// Records a point event nested under the current span (if any).
    #[inline]
    pub fn instant(&self, name: &'static str, detail: impl FnOnce() -> String) {
        if let Some(inner) = &self.inner {
            inner.record(EventKind::Instant, name, detail(), false);
        }
    }

    /// Records a *root* point event (detached in the logical tree).
    #[inline]
    pub fn root_instant(&self, name: &'static str, detail: impl FnOnce() -> String) {
        if let Some(inner) = &self.inner {
            inner.record(EventKind::Instant, name, detail(), true);
        }
    }

    /// Adds `n` to the counter `key`. No-op when disabled.
    #[inline]
    pub fn count(&self, key: &'static str, n: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.count(key, n);
        }
    }

    /// Sets the gauge `key` to `v`. No-op when disabled.
    #[inline]
    pub fn gauge(&self, key: &'static str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.gauge(key, v);
        }
    }

    /// Records `v` into the histogram `key`. No-op when disabled.
    #[inline]
    pub fn observe(&self, key: &'static str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.observe(key, v);
        }
    }

    /// Snapshot of the metrics registry (empty when disabled).
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => inner.metrics.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Snapshots every thread's events, in ring registration order.
    /// Non-destructive; safe to call while other threads still record
    /// (their in-flight events simply aren't published yet). For a
    /// consistent full trace, call after joining the recording threads —
    /// everywhere the engine calls this, the scoped threads have exited.
    #[must_use]
    pub fn events(&self) -> Vec<Vec<Event>> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => {
                let cells = inner
                    .cells
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                cells.iter().map(|c| c.snapshot()).collect()
            }
        }
    }

    /// Trace totals for the report.
    #[must_use]
    pub fn summary(&self) -> TraceSummary {
        match &self.inner {
            None => TraceSummary::default(),
            Some(inner) => {
                let cells = inner
                    .cells
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let mut s = TraceSummary::default();
                for c in cells.iter() {
                    let n = c.len.load(Ordering::Acquire);
                    if n > 0 {
                        s.threads += 1;
                    }
                    s.events += n as u64;
                    s.dropped += c.dropped.load(Ordering::Relaxed);
                }
                s
            }
        }
    }
}

/// RAII guard closing a span on drop. `!Send` by construction (the
/// matching `End` must land in the same thread's ring as the `Begin`).
pub struct Span {
    inner: Option<Arc<TracerInner>>,
    name: &'static str,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = &self.inner {
            inner.record(EventKind::End, self.name, String::new(), false);
        }
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Span({})", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        {
            let _s = t.span_with("compile", || unreachable!("detail must not be built"));
            t.instant("page-fault", || unreachable!());
        }
        t.count("x", 1);
        assert!(!t.is_enabled());
        assert!(t.events().is_empty());
        assert_eq!(t.summary(), TraceSummary::default());
        assert!(t.metrics().counters.is_empty());
    }

    #[test]
    fn spans_nest_per_thread_and_merge_at_collection() {
        let t = Tracer::new();
        {
            let _outer = t.span("run");
            t.instant("page-fault", || "section=.text".to_string());
            let _inner = t.span_with("layout", || "strategy=cu".to_string());
        }
        let threads: Vec<std::thread::JoinHandle<()>> = (0..2)
            .map(|_| {
                let t = t.clone();
                std::thread::spawn(move || {
                    let _s = t.root_span("cell", || "workload=w".to_string());
                })
            })
            .collect();
        for h in threads {
            h.join().unwrap();
        }
        let events = t.events();
        assert_eq!(events.len(), 3, "three threads registered rings");
        let main = &events[0];
        assert_eq!(main.len(), 5); // begin run, instant, begin/end layout, end run
        assert_eq!(main[0].kind, EventKind::Begin);
        assert_eq!(main[0].name, "run");
        assert_eq!(main[4].kind, EventKind::End);
        assert!(main.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        let summary = t.summary();
        assert_eq!(summary.threads, 3);
        assert_eq!(summary.events, 5 + 2 + 2);
        assert_eq!(summary.dropped, 0);
    }

    #[test]
    fn ring_overflow_drops_and_counts() {
        let t = Tracer::with_capacity(16);
        for _ in 0..40 {
            t.instant("e", String::new);
        }
        assert_eq!(t.events()[0].len(), 16);
        assert_eq!(t.summary().dropped, 24);
    }

    #[test]
    fn two_tracers_on_one_thread_keep_separate_rings() {
        let a = Tracer::new();
        let b = Tracer::new();
        a.instant("only-a", String::new);
        b.instant("only-b", String::new);
        b.instant("only-b", String::new);
        assert_eq!(a.events()[0].len(), 1);
        assert_eq!(b.events()[0].len(), 2);
    }

    #[test]
    fn metrics_pass_through() {
        let t = Tracer::new();
        t.count("cache.hits", 2);
        t.count("cache.hits", 3);
        t.gauge("ratio", 0.5);
        t.observe("lat", 7);
        let m = t.metrics();
        assert_eq!(m.counters["cache.hits"], 5);
        assert_eq!(m.gauges["ratio"], 0.5);
        assert_eq!(m.histograms["lat"].count, 1);
        assert_eq!(m.histograms["lat"].sum, 7);
    }

    #[test]
    fn debug_is_state_free() {
        let enabled = Tracer::new();
        enabled.instant("x", String::new);
        assert_eq!(format!("{enabled:?}"), "Tracer(enabled)");
        assert_eq!(format!("{:?}", Tracer::disabled()), "Tracer(disabled)");
    }
}
