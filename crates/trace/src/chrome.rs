//! Chrome-trace (Trace Event Format) export: the JSON document
//! `chrome://tracing` and Perfetto load directly. Spans become `ph:"X"`
//! complete events, instants become `ph:"i"`; one `tid` per recorded
//! thread ring, in registration order.

use crate::metrics::json_string;
use crate::{Event, EventKind};

/// Microseconds (the format's unit) from our nanosecond timestamps,
/// keeping sub-µs resolution as a fraction.
fn us(t_ns: u64) -> f64 {
    t_ns as f64 / 1000.0
}

fn args_json(detail: &str, root: bool) -> String {
    let mut parts = Vec::new();
    if !detail.is_empty() {
        parts.push(format!("\"detail\":{}", json_string(detail)));
    }
    if root {
        parts.push("\"root\":true".to_string());
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!(",\"args\":{{{}}}", parts.join(","))
    }
}

fn span_json(name: &str, detail: &str, root: bool, start: u64, end: u64, tid: usize) -> String {
    format!(
        "{{\"name\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{tid}{}}}",
        json_string(name),
        us(start),
        us(end.saturating_sub(start)),
        args_json(detail, root),
    )
}

fn instant_json(name: &str, detail: &str, root: bool, t: u64, tid: usize) -> String {
    format!(
        "{{\"name\":{},\"ph\":\"i\",\"ts\":{},\"s\":\"t\",\"pid\":1,\"tid\":{tid}{}}}",
        json_string(name),
        us(t),
        args_json(detail, root),
    )
}

/// Renders per-thread event buffers (as returned by
/// [`crate::Tracer::events`]) as a Chrome-trace JSON document.
#[must_use]
pub fn chrome_trace_json(threads: &[Vec<Event>]) -> String {
    let mut lines: Vec<String> = Vec::new();
    for (i, events) in threads.iter().enumerate() {
        let tid = i + 1;
        let last_ts = events.last().map_or(0, |e| e.t_ns);
        // (name, detail, root, start) of currently-open spans.
        let mut stack: Vec<(&'static str, &str, bool, u64)> = Vec::new();
        for ev in events {
            match ev.kind {
                EventKind::Begin => stack.push((ev.name, &ev.detail, ev.root, ev.t_ns)),
                EventKind::End => {
                    if let Some((name, detail, root, start)) = stack.pop() {
                        lines.push(span_json(name, detail, root, start, ev.t_ns, tid));
                    }
                }
                EventKind::Instant => {
                    lines.push(instant_json(ev.name, &ev.detail, ev.root, ev.t_ns, tid));
                }
            }
        }
        // Spans still open at collection close at the last timestamp.
        while let Some((name, detail, root, start)) = stack.pop() {
            lines.push(span_json(name, detail, root, start, last_ts, tid));
        }
    }
    format!(
        "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\",\
         \"otherData\":{{\"generator\":\"nimage-trace\"}}}}",
        lines.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_shapes_spans_and_instants() {
        let threads = vec![vec![
            Event {
                kind: EventKind::Begin,
                name: "run",
                detail: "workload=Sieve".to_string(),
                t_ns: 1_500,
                root: true,
            },
            Event {
                kind: EventKind::Instant,
                name: "page-fault",
                detail: String::new(),
                t_ns: 2_000,
                root: false,
            },
            Event {
                kind: EventKind::End,
                name: "run",
                detail: String::new(),
                t_ns: 10_500,
                root: false,
            },
        ]];
        let json = chrome_trace_json(&threads);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"run\",\"ph\":\"X\",\"ts\":1.5,\"dur\":9"));
        assert!(json.contains("\"name\":\"page-fault\",\"ph\":\"i\",\"ts\":2"));
        assert!(json.contains("\"args\":{\"detail\":\"workload=Sieve\",\"root\":true}"));
        assert!(json.contains("\"tid\":1"));
    }

    #[test]
    fn unclosed_span_still_exports() {
        let threads = vec![vec![
            Event {
                kind: EventKind::Begin,
                name: "run",
                detail: String::new(),
                t_ns: 0,
                root: false,
            },
            Event {
                kind: EventKind::Instant,
                name: "tick",
                detail: String::new(),
                t_ns: 4_000,
                root: false,
            },
        ]];
        let json = chrome_trace_json(&threads);
        assert!(json.contains("\"name\":\"run\",\"ph\":\"X\",\"ts\":0,\"dur\":4"));
    }
}
