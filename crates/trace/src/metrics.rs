//! A typed metrics registry: counters, gauges and log₂-bucket
//! histograms under static keys, with deterministic (sorted-key)
//! snapshots. The engine's scattered per-subsystem counters fold into
//! one of these; the JSON report serializes the snapshot.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// A log₂-bucketed histogram: bucket `i` holds values whose bit length
/// is `i` (bucket 0 holds zero), so `[1,1]→b1`, `[2,3]→b2`, `[4,7]→b3`…
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Per-bucket counts (65 buckets: bit lengths 0..=64).
    pub buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: vec![0; 65],
        }
    }
}

impl Histogram {
    fn record(&mut self, v: u64) {
        self.min = if self.count == 0 { v } else { self.min.min(v) };
        self.max = self.max.max(v);
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        let bucket = (u64::BITS - v.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
    }

    /// Mean of the recorded values (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

/// Thread-safe metrics store keyed by `&'static str`. Cheap enough to
/// update from any pipeline stage; a single mutex suffices because
/// updates are rare next to the work they annotate (never on the VM's
/// per-op path).
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Adds `n` to counter `key` (creating it at 0).
    pub fn count(&self, key: &'static str, n: u64) {
        *self.lock().counters.entry(key).or_insert(0) += n;
    }

    /// Sets gauge `key` to `v` (last write wins).
    pub fn gauge(&self, key: &'static str, v: f64) {
        self.lock().gauges.insert(key, v);
    }

    /// Records `v` into histogram `key`.
    pub fn observe(&self, key: &'static str, v: u64) {
        self.lock().histograms.entry(key).or_default().record(v);
    }

    /// Deterministic (key-sorted) copy of the current state.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| ((*k).to_string(), *v))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| ((*k).to_string(), *v))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        }
    }
}

/// Owned, sorted snapshot of a [`MetricsRegistry`]. Report code may add
/// derived entries (cache hit totals, shard counts) before serializing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counts.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time values.
    pub gauges: BTreeMap<String, f64>,
    /// Distributions.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as a JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{k:{count,sum,min,max,mean}}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{v}", json_string(k)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json_string(k), json_f64(*v)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{}}}",
                json_string(k),
                h.count,
                h.sum,
                h.min,
                h.max,
                json_f64(h.mean()),
            ));
        }
        out.push_str("}}");
        out
    }
}

/// JSON string literal (quotes + escapes) for `s`.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON-safe rendering of an `f64` (JSON has no NaN/Inf — clamp to 0).
#[must_use]
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` prints integral floats without a dot; keep them numbers.
        s
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 7, 8, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count, 8);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, u64::MAX);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2,3
        assert_eq!(h.buckets[3], 2); // 4,7
        assert_eq!(h.buckets[4], 1); // 8
        assert_eq!(h.buckets[64], 1); // u64::MAX
    }

    #[test]
    fn snapshot_is_sorted_and_json_escapes() {
        let r = MetricsRegistry::new();
        r.count("b", 2);
        r.count("a", 1);
        r.gauge("g\"x", 1.5);
        r.observe("h", 3);
        let s = r.snapshot();
        let keys: Vec<&str> = s.counters.keys().map(String::as_str).collect();
        assert_eq!(keys, ["a", "b"]);
        let json = s.to_json();
        assert!(json.contains("\"a\":1"));
        assert!(json.contains("\"g\\\"x\":1.5"));
        assert!(json.contains("\"h\":{\"count\":1,\"sum\":3,"));
    }
}
