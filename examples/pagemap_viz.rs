//! Fig. 6-style page-map visualization for any AWFY benchmark: renders the
//! `.text` and `.svm_heap` sections page by page, regular layout vs the
//! combined `cu+heap path` layout.
//!
//! `#` = faulted (green in the paper), `+` = resident without fault (red),
//! `.` = untouched (black).
//!
//! ```sh
//! cargo run --release --example pagemap_viz -- [benchmark] [width]
//! ```

use nimage::vm::{render_ascii, summarize, StopWhen};
use nimage::workloads::Awfy;
use nimage::{BuildOptions, Pipeline, PipelineError, Strategy};

fn main() -> Result<(), PipelineError> {
    let wanted = std::env::args().nth(1).unwrap_or_else(|| "Bounce".into());
    let width: usize = std::env::args()
        .nth(2)
        .and_then(|w| w.parse().ok())
        .unwrap_or(64);
    let bench = Awfy::all()
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(&wanted))
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark {wanted}");
            std::process::exit(2);
        });

    let program = bench.program();
    let pipeline = Pipeline::new(&program, BuildOptions::default());
    let artifacts = pipeline.profiling_run(StopWhen::Exit)?;

    let variants = [
        ("regular binary", None),
        ("cu+heap path binary", Some(Strategy::CuPlusHeapPath)),
    ];
    for (label, strategy) in variants {
        let image = pipeline.build_optimized(&artifacts, strategy)?;
        let report = pipeline.run_image(&image, StopWhen::Exit)?;
        for (section, states) in [
            (".text", &report.text_page_states),
            (".svm_heap", &report.heap_page_states),
        ] {
            let s = summarize(states);
            println!(
                "\n--- {} — {section} ({} pages: {} faulted, {} resident, {} untouched) ---",
                label,
                states.len(),
                s.faulted,
                s.resident,
                s.untouched
            );
            println!("{}", render_ascii(states, width));
        }
    }
    Ok(())
}
