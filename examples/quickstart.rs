//! Quickstart: hand-build a tiny program with the IR builder, run the full
//! profile-guided reordering pipeline and print the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nimage::ir::{ProgramBuilder, TypeRef};
use nimage::vm::{CostModel, StopWhen};
use nimage::{BuildOptions, Pipeline, PipelineError, Strategy};

fn main() -> Result<(), PipelineError> {
    // A program with a cold-but-reachable half and a hot half, plus a heap
    // snapshot built by a class initializer: the minimal shape on which
    // binary reordering pays off.
    let mut pb = ProgramBuilder::new();

    let cell = pb.add_class("demo.Cell", None);
    let cell_val = pb.add_instance_field(cell, "val", TypeRef::Int);
    let data = pb.add_class("demo.Data", None);
    let table = pb.add_static_field(data, "TABLE", TypeRef::array_of(TypeRef::Object(cell)));
    let clinit = pb.declare_clinit(data);
    let mut f = pb.body(clinit);
    let n = f.iconst(8_000);
    let arr = f.new_array(TypeRef::Object(cell), n);
    let from = f.iconst(0);
    f.for_range(from, n, |f, i| {
        let c = f.new_object(cell);
        let sq = f.mul(i, i);
        f.put_field(c, cell_val, sq);
        f.array_set(arr, i, c);
    });
    f.put_static(table, arr);
    f.ret(None);
    pb.finish_body(clinit, f);

    let app = pb.add_class("demo.Main", None);
    let cold_flag = pb.add_static_field(app, "COLD", TypeRef::Bool);
    let mut workers = vec![];
    for i in 0..60 {
        let m = pb.declare_static(app, &format!("step{i:02}"), &[], Some(TypeRef::Int));
        let mut f = pb.body(m);
        let mut v = f.iconst(i);
        for _ in 0..300 {
            let one = f.iconst(1);
            v = f.add(v, one);
        }
        f.ret(Some(v));
        pb.finish_body(m, f);
        workers.push(m);
    }

    let main = pb.declare_static(app, "main", &[], Some(TypeRef::Int));
    let mut f = pb.body(main);
    let acc = f.iconst(0);
    // Keep everything reachable; execute only every fifth step.
    let take_cold = f.get_static(cold_flag);
    let cold: Vec<_> = workers
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 5 != 0)
        .map(|(_, &m)| m)
        .collect();
    f.if_then(take_cold, |f| {
        for &m in &cold {
            let v = f.call_static(m, &[], true).unwrap();
            let s = f.add(acc, v);
            f.assign(acc, s);
        }
    });
    for (i, &m) in workers.iter().enumerate() {
        if i % 5 == 0 {
            let v = f.call_static(m, &[], true).unwrap();
            let s = f.add(acc, v);
            f.assign(acc, s);
        }
    }
    // Read a sparse sample of the snapshot.
    let arr = f.get_static(table);
    let len = f.array_len(arr);
    let stride = f.iconst(400);
    let i = f.iconst(0);
    f.while_loop(
        |f| f.lt(i, len),
        |f| {
            let c = f.array_get(arr, i);
            let v = f.get_field(c, cell_val);
            let s = f.add(acc, v);
            f.assign(acc, s);
            let next = f.add(i, stride);
            f.assign(i, next);
        },
    );
    f.ret(Some(acc));
    pb.finish_body(main, f);
    pb.set_entry(main);
    let program = pb.build().expect("program validates");

    // The whole paper in four lines: profile once, evaluate the combined
    // cu + heap-path strategy against the default layout.
    let pipeline = Pipeline::new(&program, BuildOptions::default());
    let eval = pipeline.evaluate(Strategy::CuPlusHeapPath, StopWhen::Exit)?;

    let cm = CostModel::ssd();
    println!("strategy            : {}", eval.strategy.name());
    println!(
        "page faults         : {:?} -> {:?}",
        eval.baseline.faults, eval.optimized.faults
    );
    println!(
        "fault reduction     : {:.2}x (.text {:.2}x, .svm_heap {:.2}x)",
        eval.total_fault_reduction(),
        eval.text_fault_reduction(),
        eval.heap_fault_reduction()
    );
    println!(
        "startup speedup     : {:.2}x (SSD cost model)",
        eval.speedup(&cm)
    );
    assert_eq!(
        eval.baseline.entry_return, eval.optimized.entry_return,
        "reordering never changes program results"
    );
    Ok(())
}
