//! FaaS-model evaluation on an AWFY benchmark: profile once, then compare
//! every ordering strategy, like one column group of the paper's Fig. 2/5.
//!
//! ```sh
//! cargo run --release --example awfy_faas -- [benchmark]
//! ```
//!
//! `benchmark` defaults to `Bounce`; any of the 14 AWFY names works
//! (case-insensitive).

use nimage::vm::{CostModel, StopWhen};
use nimage::workloads::Awfy;
use nimage::{BuildOptions, EvalInputs, Pipeline, PipelineError, Strategy};

fn main() -> Result<(), PipelineError> {
    let wanted = std::env::args().nth(1).unwrap_or_else(|| "Bounce".into());
    let bench = Awfy::all()
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(&wanted))
        .unwrap_or_else(|| {
            eprintln!(
                "unknown benchmark {wanted}; available: {}",
                Awfy::all().map(|b| b.name()).join(", ")
            );
            std::process::exit(2);
        });

    println!("building {} at full runtime scale…", bench.name());
    let program = bench.program();
    println!(
        "  {} classes, {} methods, {} KiB of code",
        program.classes().len(),
        program.methods().len(),
        program.total_code_size() / 1024
    );

    let pipeline = Pipeline::new(&program, BuildOptions::default());
    println!("profiling run (instrumented binary, dump mode 1)…");
    let artifacts = pipeline.profiling_run(StopWhen::Exit)?;
    println!(
        "  profiles: {} CU entries, {} method entries, {} object ids (heap path)",
        artifacts.cu_profile.sigs.len(),
        artifacts.method_profile.sigs.len(),
        artifacts.heap_profiles[&nimage::order::HeapStrategy::HeapPath]
            .ids
            .len()
    );

    let cm = CostModel::ssd();
    println!(
        "\n{:<16} {:>12} {:>12} {:>10} {:>9}",
        "strategy", "base faults", "opt faults", "reduction", "speedup"
    );
    let base = pipeline.baseline(&artifacts, StopWhen::Exit)?;
    for strategy in Strategy::all() {
        let eval = pipeline.evaluate_strategy(
            EvalInputs {
                artifacts: &artifacts,
                baseline: &base,
            },
            strategy,
            StopWhen::Exit,
        )?;
        println!(
            "{:<16} {:>12} {:>12} {:>9.2}x {:>8.2}x",
            strategy.name(),
            eval.baseline.faults.total(),
            eval.optimized.faults.total(),
            eval.reported_fault_reduction(),
            eval.speedup(&cm),
        );
    }
    Ok(())
}

trait Join {
    fn join(self, sep: &str) -> String;
}

impl<const N: usize> Join for [&'static str; N] {
    fn join(self, sep: &str) -> String {
        self.as_slice().join(sep)
    }
}
