//! Microservice cold start: measure time-to-first-response of a helloworld
//! service before and after reordering, and demonstrate why the profiler's
//! memory-mapped dump mode matters when the service is killed right after
//! the first response (Sec. 6.1 / 7.1).
//!
//! ```sh
//! cargo run --release --example microservice -- [micronaut|quarkus|spring]
//! ```

use nimage::compiler::InstrumentConfig;
use nimage::profiler::DumpMode;
use nimage::vm::{CostModel, StopWhen, VmConfig};
use nimage::workloads::Microservice;
use nimage::{BuildOptions, EvalInputs, Pipeline, PipelineError, Strategy};

fn options(dump_mode: DumpMode) -> BuildOptions {
    BuildOptions {
        vm: VmConfig {
            dump_mode,
            ..VmConfig::default()
        },
        ..BuildOptions::default()
    }
}

fn main() -> Result<(), PipelineError> {
    let wanted = std::env::args().nth(1).unwrap_or_else(|| "spring".into());
    let service = Microservice::all()
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(&wanted))
        .unwrap_or_else(|| {
            eprintln!("unknown service {wanted}; use micronaut, quarkus or spring");
            std::process::exit(2);
        });
    let program = service.program();

    // First, the cautionary tale: with dump mode 1 the SIGKILL after the
    // first response throws the buffered trace away.
    let naive = Pipeline::new(&program, options(DumpMode::OnFull));
    let built = naive.build_instrumented(InstrumentConfig::FULL)?;
    let report = naive.run_image(&built, StopWhen::FirstResponse)?;
    let stats = report.session_stats.expect("instrumented run");
    println!(
        "dump mode 1 (flush on exit): {} records lost to the kill",
        stats.lost_records
    );

    // The paper's answer: memory-mapped buffers survive the kill.
    let pipeline = Pipeline::new(&program, options(DumpMode::MemoryMapped));
    let artifacts = pipeline.profiling_run(StopWhen::FirstResponse)?;
    let stats = artifacts
        .instrumented_report
        .session_stats
        .expect("instrumented run");
    println!(
        "dump mode 2 (memory-mapped): 0 lost, {} remaps, {} threads traced\n",
        stats.remaps,
        artifacts
            .instrumented_report
            .trace
            .as_ref()
            .map(|t| t.threads.len())
            .unwrap_or(0)
    );

    let cm = CostModel::ssd();
    println!("{} helloworld, time to first response:", service.name());
    let base = pipeline.baseline(&artifacts, StopWhen::FirstResponse)?;
    for strategy in [Strategy::Cu, Strategy::HeapPath, Strategy::CuPlusHeapPath] {
        let eval = pipeline.evaluate_strategy(
            EvalInputs {
                artifacts: &artifacts,
                baseline: &base,
            },
            strategy,
            StopWhen::FirstResponse,
        )?;
        let base = eval
            .baseline
            .time_to_first_response_ns(&cm)
            .expect("baseline responded");
        let opt = eval
            .optimized
            .time_to_first_response_ns(&cm)
            .expect("optimized responded");
        println!(
            "  {:<14} {:>7.2} ms -> {:>6.2} ms  ({:.2}x, faults {} -> {})",
            strategy.name(),
            base / 1e6,
            opt / 1e6,
            eval.speedup(&cm),
            eval.baseline.faults.total(),
            eval.optimized.faults.total(),
        );
    }
    Ok(())
}
