//! Acceptance for the evaluation engine: the parallel, cached matrix
//! evaluation must be indistinguishable — cell for cell, field for field —
//! from the serial uncached loop it replaced, and the cache must actually
//! share the per-workload artifacts across strategies.

use nimage::vm::StopWhen;
use nimage::workloads::{Awfy, RuntimeScale};
use nimage::{BuildOptions, Engine, EngineOptions, EvalInputs, Pipeline, Strategy, WorkloadSpec};

/// Every observable field of an evaluation, rendered deterministically for
/// comparison: plain Debug for the value-like fields, and the call-count
/// profile in sorted order (its backing `HashMap` iterates in seed order).
fn render(strategy: Strategy, eval: &nimage::Evaluation) -> String {
    let report = |r: &nimage::vm::RunReport| {
        let mut counts: Vec<(&str, u64)> = r.call_counts.iter().collect();
        counts.sort_unstable();
        format!(
            "ops={} probe_ops={} faults={:?} first_response={:?} exit={:?} ret={:?} \
             native={:?} text={:?} heap={:?} stats={:?} counts={counts:?}",
            r.ops,
            r.probe_ops,
            r.faults,
            r.first_response,
            r.exit,
            r.entry_return,
            r.native_touch_pages,
            r.text_page_states,
            r.heap_page_states,
            r.session_stats,
        )
    };
    format!(
        "{strategy:?} base[{}] opt[{}]",
        report(&eval.baseline),
        report(&eval.optimized)
    )
}

#[test]
fn parallel_matrix_matches_serial_loop_row_for_row() {
    let scale = RuntimeScale::small();
    let programs = [
        ("Sieve", Awfy::Sieve.program_at(&scale)),
        ("Towers", Awfy::Towers.program_at(&scale)),
    ];
    let strategies = Strategy::all();

    // The reference: the plain serial loop over uncached Pipeline calls.
    let mut expected: Vec<(String, String)> = Vec::new();
    for (name, program) in &programs {
        let pipeline = Pipeline::new(program, BuildOptions::default());
        let artifacts = pipeline.profiling_run(StopWhen::Exit).unwrap();
        let base = pipeline.baseline(&artifacts, StopWhen::Exit).unwrap();
        for s in strategies {
            let eval = pipeline
                .evaluate_strategy(
                    EvalInputs {
                        artifacts: &artifacts,
                        baseline: &base,
                    },
                    s,
                    StopWhen::Exit,
                )
                .unwrap();
            expected.push((name.to_string(), render(s, &eval)));
        }
    }

    // The engine, forced onto several worker threads.
    let engine = Engine::new(EngineOptions {
        n_threads: 4,
        disk: None,
        trace: Default::default(),
    });
    let specs: Vec<WorkloadSpec<'_>> = programs
        .iter()
        .map(|(name, program)| {
            WorkloadSpec::new(*name, program, BuildOptions::default(), StopWhen::Exit)
        })
        .collect();
    let cells = engine.evaluate_matrix(&specs, &strategies).unwrap();

    assert_eq!(cells.len(), expected.len(), "row-major cell count");
    for (cell, (name, rendered)) in cells.iter().zip(&expected) {
        assert_eq!(&cell.workload, name, "deterministic row order");
        assert_eq!(
            &render(cell.strategy, &cell.eval),
            rendered,
            "{name}/{}: parallel cell must equal the serial loop's",
            cell.strategy.name()
        );
    }
}

#[test]
fn engine_computes_shared_artifacts_once_per_workload() {
    let program = Awfy::Sieve.program_at(&RuntimeScale::small());
    let engine = Engine::new(EngineOptions {
        n_threads: 2,
        disk: None,
        trace: Default::default(),
    });
    let spec = WorkloadSpec::new("Sieve", &program, BuildOptions::default(), StopWhen::Exit);
    let strategies = Strategy::all();
    engine
        .evaluate_matrix(std::slice::from_ref(&spec), &strategies)
        .unwrap();

    let by_name = |name: &str| {
        engine
            .stats()
            .cache
            .iter()
            .find(|m| m.name == name)
            .copied()
            .unwrap_or_else(|| panic!("no memo named {name}"))
    };
    // One workload: the profiling run and the baseline measurement each
    // miss exactly once; the other five strategies hit. The shared layout
    // memo misses twice — the instrumented and the baseline layout.
    assert_eq!(by_name("profile").misses, 1);
    assert_eq!(by_name("layout").misses, 2);
    assert_eq!(by_name("baseline-run").misses, 1);
    assert_eq!(by_name("profile").hits as usize, strategies.len() - 1);
    // Instrumented + optimized compile and snapshot: two misses each.
    assert_eq!(by_name("compile").misses, 2);
    assert_eq!(by_name("snapshot").misses, 2);

    // A second pass over the same workload is answered from the cache:
    // no stage misses again.
    let misses_before: u64 = engine.stats().cache_misses();
    engine
        .evaluate_matrix(std::slice::from_ref(&spec), &strategies)
        .unwrap();
    assert_eq!(
        engine.stats().cache_misses(),
        misses_before,
        "fully warm cache must not recompute anything"
    );
}

#[test]
fn engine_reports_stage_times_for_computed_work() {
    let program = Awfy::Sieve.program_at(&RuntimeScale::small());
    let engine = Engine::default();
    let spec = WorkloadSpec::new("Sieve", &program, BuildOptions::default(), StopWhen::Exit);
    engine
        .evaluate_matrix(std::slice::from_ref(&spec), &Strategy::all())
        .unwrap();
    let stages = engine.stats().stages;
    assert!(stages.total_ns() > 0);
    for required in ["analyze", "compile", "snapshot", "order", "layout", "run"] {
        let (_, ns) = stages.iter().find(|(n, _)| *n == required).unwrap();
        assert!(ns > 0, "stage {required} must have recorded wall-clock");
    }
}
