//! Workspace-level integration tests: the full pipeline over the real
//! workloads at reduced scale, exercising every crate together.

use nimage::compiler::InstrumentConfig;
use nimage::profiler::{read_trace, write_trace, DumpMode};
use nimage::vm::{CostModel, StopWhen, VmConfig};
use nimage::workloads::{Awfy, Microservice, RuntimeScale};
use nimage::{BuildOptions, EvalInputs, Pipeline, Strategy};

fn options(dump: DumpMode) -> BuildOptions {
    BuildOptions {
        vm: VmConfig {
            dump_mode: dump,
            ..VmConfig::default()
        },
        ..BuildOptions::default()
    }
}

/// Every AWFY benchmark goes through the complete pipeline and no strategy
/// changes its result or increases its reported fault metric.
#[test]
fn awfy_pipeline_small_scale() {
    let scale = RuntimeScale::small();
    for bench in [Awfy::Sieve, Awfy::Towers, Awfy::Json, Awfy::Richards] {
        let program = bench.program_at(&scale);
        let pipeline = Pipeline::new(&program, options(DumpMode::OnFull));
        let artifacts = pipeline.profiling_run(StopWhen::Exit).unwrap();
        let base = pipeline.baseline(&artifacts, StopWhen::Exit).unwrap();
        for strategy in Strategy::all() {
            let eval = pipeline
                .evaluate_strategy(
                    EvalInputs {
                        artifacts: &artifacts,
                        baseline: &base,
                    },
                    strategy,
                    StopWhen::Exit,
                )
                .unwrap();
            assert_eq!(
                eval.baseline.entry_return,
                eval.optimized.entry_return,
                "{}/{}",
                bench.name(),
                strategy.name()
            );
            assert!(
                eval.reported_fault_reduction() >= 0.99,
                "{}/{}: regression {:.3}",
                bench.name(),
                strategy.name(),
                eval.reported_fault_reduction()
            );
        }
    }
}

/// The microservice pipeline end-to-end: dump mode 2 preserves the trace
/// through the kill, and the combined strategy speeds up the first
/// response.
#[test]
fn microservice_pipeline_small_scale() {
    let scale = RuntimeScale::small();
    for service in Microservice::all() {
        let program = service.program_at(&scale);
        let pipeline = Pipeline::new(&program, options(DumpMode::MemoryMapped));
        let artifacts = pipeline.profiling_run(StopWhen::FirstResponse).unwrap();
        let stats = artifacts.instrumented_report.session_stats.expect("stats");
        assert_eq!(
            stats.lost_records,
            0,
            "{}: mmap mode loses nothing",
            service.name()
        );
        let base = pipeline
            .baseline(&artifacts, StopWhen::FirstResponse)
            .unwrap();
        let eval = pipeline
            .evaluate_strategy(
                EvalInputs {
                    artifacts: &artifacts,
                    baseline: &base,
                },
                Strategy::CuPlusHeapPath,
                StopWhen::FirstResponse,
            )
            .unwrap();
        let cm = CostModel::ssd();
        assert!(
            eval.speedup(&cm) >= 1.0,
            "{}: speedup {:.3}",
            service.name(),
            eval.speedup(&cm)
        );
    }
}

/// Dump mode 1 demonstrably loses records under SIGKILL — the failure the
/// paper's second buffer-dumping mode exists to prevent.
#[test]
fn on_full_mode_loses_records_on_kill() {
    let program = Microservice::Micronaut.program_at(&RuntimeScale::small());
    let pipeline = Pipeline::new(&program, options(DumpMode::OnFull));
    let built = pipeline.build_instrumented(InstrumentConfig::FULL).unwrap();
    let report = pipeline.run_image(&built, StopWhen::FirstResponse).unwrap();
    assert!(
        report.session_stats.unwrap().lost_records > 0,
        "the kill must catch staged records"
    );
}

/// The serialized trace file round-trips through the wire format.
#[test]
fn trace_file_roundtrip_through_disk_format() {
    let program = Awfy::Sieve.program_at(&RuntimeScale::small());
    let pipeline = Pipeline::new(&program, options(DumpMode::OnFull));
    let built = pipeline.build_instrumented(InstrumentConfig::FULL).unwrap();
    let report = pipeline.run_image(&built, StopWhen::Exit).unwrap();
    let trace = report.trace.unwrap();
    let bytes = write_trace(&trace);
    let back = read_trace(&bytes).unwrap();
    assert_eq!(back, trace);
    assert!(!bytes.is_empty());
}

/// The serialized image container round-trips, and reordering is visible in
/// the file's CU table.
#[test]
fn image_file_reflects_reordering() {
    let program = Awfy::Queens.program_at(&RuntimeScale::small());
    let pipeline = Pipeline::new(&program, options(DumpMode::OnFull));
    let artifacts = pipeline.profiling_run(StopWhen::Exit).unwrap();
    let baseline = pipeline.build_optimized(&artifacts, None).unwrap();
    let optimized = pipeline
        .build_optimized(&artifacts, Some(Strategy::Cu))
        .unwrap();

    let base_file =
        nimage::image::read_image_file(&nimage::image::write_image_file(&baseline.image)).unwrap();
    let opt_file =
        nimage::image::read_image_file(&nimage::image::write_image_file(&optimized.image)).unwrap();
    assert_eq!(base_file.cus.len(), opt_file.cus.len());
    let base_ids: Vec<u32> = base_file.cus.iter().map(|&(id, _)| id).collect();
    let opt_ids: Vec<u32> = opt_file.cus.iter().map(|&(id, _)| id).collect();
    assert_ne!(base_ids, opt_ids, "cu ordering must change the layout");
    // Same CU set either way.
    let mut a = base_ids.clone();
    let mut b = opt_ids.clone();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
}

/// Ordering profiles survive the CSV round trip that connects the
/// post-processing framework to the optimizing build (Sec. 6.2).
#[test]
fn profiles_roundtrip_through_csv() {
    use nimage::order::{
        CodeOrderProfile, CuOrderAnalysis, HeapOrderAnalysis, HeapOrderProfile, OrderingAnalysis,
    };
    let program = Awfy::List.program_at(&RuntimeScale::small());
    let pipeline = Pipeline::new(&program, options(DumpMode::OnFull));
    let artifacts = pipeline.profiling_run(StopWhen::Exit).unwrap();

    let mut cu = CuOrderAnalysis::new();
    for sig in &artifacts.cu_profile.sigs {
        cu.visit(&nimage::order::Event::CuEntry(sig.clone()));
    }
    let csv = cu.to_csv();
    assert_eq!(CodeOrderProfile::from_csv(&csv), artifacts.cu_profile);

    let heap = &artifacts.heap_profiles[&nimage::order::HeapStrategy::HeapPath];
    let mut ha = HeapOrderAnalysis::new();
    for &id in &heap.ids {
        ha.visit(&nimage::order::Event::ObjectAccess(id));
    }
    // The event-replay path carries no touched-byte measurements, so its
    // CSV preserves the identities but not the spans (those ride the
    // `save_profiles` CSV, covered by the persist round-trip tests).
    let replayed = HeapOrderProfile::from_csv(&ha.to_csv());
    assert_eq!(replayed.ids, heap.ids);
    assert!(replayed.spans.iter().all(Vec::is_empty));
    assert!(heap.spans.iter().any(|s| !s.is_empty()));
}

/// The paper's expected orderings hold on at least one full-scale workload
/// (kept to a single benchmark so the test suite stays fast).
#[test]
fn full_scale_shape_bounce() {
    let program = Awfy::Bounce.program();
    let pipeline = Pipeline::new(&program, options(DumpMode::OnFull));
    let artifacts = pipeline.profiling_run(StopWhen::Exit).unwrap();
    let base = pipeline.baseline(&artifacts, StopWhen::Exit).unwrap();
    let get = |s: Strategy| {
        pipeline
            .evaluate_strategy(
                EvalInputs {
                    artifacts: &artifacts,
                    baseline: &base,
                },
                s,
                StopWhen::Exit,
            )
            .unwrap()
            .reported_fault_reduction()
    };
    let cu = get(Strategy::Cu);
    let method = get(Strategy::Method);
    let incr = get(Strategy::IncrementalId);
    let hash = get(Strategy::StructuralHash);
    let path = get(Strategy::HeapPath);
    let both = get(Strategy::CuPlusHeapPath);
    // Fig. 2's qualitative claims (artifact appendix B.3.1):
    // code strategies beat heap strategies; cu ≥ method; heap path and
    // structural beat incremental; the combined strategy reduces faults in
    // both sections.
    assert!(cu > 1.3, "cu = {cu:.2}");
    assert!(cu >= method, "cu {cu:.2} vs method {method:.2}");
    assert!(path >= incr, "heap path {path:.2} vs incremental {incr:.2}");
    assert!(
        hash >= incr,
        "structural {hash:.2} vs incremental {incr:.2}"
    );
    assert!(both > 1.3, "combined = {both:.2}");
}

/// The native-tail reordering extension (the paper's Appendix A future
/// work) preserves semantics and never increases faults.
#[test]
fn native_tail_extension_is_safe_and_effective() {
    let program = Awfy::Sieve.program_at(&RuntimeScale::small());
    let base_opts = options(DumpMode::OnFull);
    let ext_opts = BuildOptions {
        reorder_native: true,
        ..options(DumpMode::OnFull)
    };
    let base_pipeline = Pipeline::new(&program, base_opts);
    let ext_pipeline = Pipeline::new(&program, ext_opts);
    let base_artifacts = base_pipeline.profiling_run(StopWhen::Exit).unwrap();
    let ext_artifacts = ext_pipeline.profiling_run(StopWhen::Exit).unwrap();
    let base_baseline = base_pipeline
        .baseline(&base_artifacts, StopWhen::Exit)
        .unwrap();
    let ext_baseline = ext_pipeline
        .baseline(&ext_artifacts, StopWhen::Exit)
        .unwrap();
    let base = base_pipeline
        .evaluate_strategy(
            EvalInputs {
                artifacts: &base_artifacts,
                baseline: &base_baseline,
            },
            Strategy::CuPlusHeapPath,
            StopWhen::Exit,
        )
        .unwrap();
    let ext = ext_pipeline
        .evaluate_strategy(
            EvalInputs {
                artifacts: &ext_artifacts,
                baseline: &ext_baseline,
            },
            Strategy::CuPlusHeapPath,
            StopWhen::Exit,
        )
        .unwrap();
    assert_eq!(base.optimized.entry_return, ext.optimized.entry_return);
    assert!(
        ext.optimized.faults.total() <= base.optimized.faults.total(),
        "native reordering must not regress ({} vs {})",
        ext.optimized.faults.total(),
        base.optimized.faults.total()
    );
}

/// The instrumented run reports the native first-touch profile the
/// extension consumes.
#[test]
fn native_touch_profile_is_recorded() {
    let program = Awfy::Sieve.program_at(&RuntimeScale::small());
    let pipeline = Pipeline::new(&program, options(DumpMode::OnFull));
    let artifacts = pipeline.profiling_run(StopWhen::Exit).unwrap();
    assert!(
        !artifacts.native_pages.is_empty(),
        "startup must touch native pages"
    );
    // First-touch order has no duplicates.
    let set: std::collections::HashSet<_> = artifacts.native_pages.iter().collect();
    assert_eq!(set.len(), artifacts.native_pages.len());
}
