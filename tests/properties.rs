//! Property-based tests over the core invariants, spanning crates:
//! MurmurHash3 behaviour, Ball–Larus decode correctness on random CFGs,
//! layout/ordering invariants, paging-simulator laws, and VM ⇄ build-time
//! interpreter equivalence on random arithmetic programs.

use proptest::prelude::*;

use nimage::analysis::{analyze, AnalysisConfig};
use nimage::compiler::{compile, InlineConfig, InstrumentConfig, PathNumbering, ProfilingCfg};
use nimage::heap::{snapshot, HeapBuildConfig, StepBudget};
use nimage::image::{BinaryImage, ImageOptions};
use nimage::ir::{BinOp, BodyBuilder, Program, ProgramBuilder, TypeRef};
use nimage::order::{assign_ids, murmur3, order_objects, HeapOrderProfile, HeapStrategy};
use nimage::vm::{PagingConfig, PagingSim, RtValue, StopWhen, Vm, VmConfig};

// ---------------------------------------------------------------- murmur3

proptest! {
    /// Same input, same output; different inputs (amended by one byte)
    /// almost surely differ.
    #[test]
    fn murmur_is_deterministic_and_sensitive(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let h1 = murmur3::hash64(&data);
        let h2 = murmur3::hash64(&data);
        prop_assert_eq!(h1, h2);
        let mut flipped = data.clone();
        flipped.push(0xAB);
        prop_assert_ne!(h1, murmur3::hash64(&flipped));
    }

    /// The 128-bit variant halves agree with the 64-bit helper.
    #[test]
    fn murmur_hash64_is_low_half(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(murmur3::hash64(&data), murmur3::hash128(&data, 0).0);
    }
}

// ------------------------------------------------- random arithmetic bodies

/// A tiny expression language we can evaluate in Rust and compile to IR.
#[derive(Debug, Clone)]
enum Expr {
    Const(i32),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    If(Box<Expr>, Box<Expr>, Box<Expr>),
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = (-100i32..100).prop_map(Expr::Const);
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| Expr::If(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

fn eval_expr(e: &Expr) -> i64 {
    match e {
        Expr::Const(c) => i64::from(*c),
        Expr::Add(a, b) => eval_expr(a).wrapping_add(eval_expr(b)),
        Expr::Sub(a, b) => eval_expr(a).wrapping_sub(eval_expr(b)),
        Expr::Mul(a, b) => eval_expr(a).wrapping_mul(eval_expr(b)),
        Expr::If(c, a, b) => {
            if eval_expr(c) > 0 {
                eval_expr(a)
            } else {
                eval_expr(b)
            }
        }
    }
}

fn emit_expr(f: &mut BodyBuilder, e: &Expr) -> nimage::ir::Local {
    match e {
        Expr::Const(c) => f.iconst(i64::from(*c)),
        Expr::Add(a, b) => {
            let va = emit_expr(f, a);
            let vb = emit_expr(f, b);
            f.add(va, vb)
        }
        Expr::Sub(a, b) => {
            let va = emit_expr(f, a);
            let vb = emit_expr(f, b);
            f.sub(va, vb)
        }
        Expr::Mul(a, b) => {
            let va = emit_expr(f, a);
            let vb = emit_expr(f, b);
            f.mul(va, vb)
        }
        Expr::If(c, a, b) => {
            let vc = emit_expr(f, c);
            let zero = f.iconst(0);
            let cond = f.bin(BinOp::Gt, vc, zero);
            let out = f.local();
            f.if_then_else(
                cond,
                |f| {
                    let v = emit_expr(f, a);
                    f.assign(out, v);
                },
                |f| {
                    let v = emit_expr(f, b);
                    f.assign(out, v);
                },
            );
            out
        }
    }
}

fn program_of(e: &Expr) -> Program {
    let mut pb = ProgramBuilder::new();
    let c = pb.add_class("prop.Main", None);
    let main = pb.declare_static(c, "main", &[], Some(TypeRef::Int));
    let mut f = pb.body(main);
    let v = emit_expr(&mut f, e);
    f.ret(Some(v));
    pb.finish_body(main, f);
    pb.set_entry(main);
    pb.build().expect("generated program validates")
}

fn run_vm(program: &Program, instr: InstrumentConfig) -> RtValue {
    let reach = analyze(program, &AnalysisConfig::default());
    let compiled = compile(program, reach, &InlineConfig::default(), instr, None);
    let snap = snapshot(program, &compiled, &HeapBuildConfig::default()).unwrap();
    let image = BinaryImage::build(&compiled, &snap, None, None, ImageOptions::default());
    Vm::new(program, &compiled, &snap, &image, VmConfig::default())
        .run(StopWhen::Exit)
        .unwrap()
        .entry_return
        .expect("main returns")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The VM agrees with a direct Rust evaluation of the expression.
    #[test]
    fn vm_matches_reference_semantics(e in expr_strategy()) {
        let program = program_of(&e);
        prop_assert_eq!(run_vm(&program, InstrumentConfig::NONE), RtValue::Int(eval_expr(&e)));
    }

    /// Instrumentation must never change results ("heisenbug freedom").
    #[test]
    fn instrumentation_preserves_semantics(e in expr_strategy()) {
        let program = program_of(&e);
        prop_assert_eq!(
            run_vm(&program, InstrumentConfig::NONE),
            run_vm(&program, InstrumentConfig::FULL)
        );
    }

    /// The VM agrees with the build-time interpreter on the same body.
    #[test]
    fn vm_matches_build_time_interpreter(e in expr_strategy()) {
        let program = program_of(&e);
        let entry = program.entry.unwrap();
        let mut heap = nimage::heap::BuildHeap::new();
        let mut budget = StepBudget::default();
        let build_time =
            nimage::heap::exec_method(&program, &mut heap, entry, vec![], &mut budget, 0)
                .unwrap();
        let rt = run_vm(&program, InstrumentConfig::NONE);
        match (build_time, rt) {
            (Some(nimage::heap::HValue::Int(a)), RtValue::Int(b)) => prop_assert_eq!(a, b),
            other => prop_assert!(false, "unexpected values {:?}", other),
        }
    }

    /// Ball–Larus path ids of random bodies decode to unique mini-block
    /// sequences.
    #[test]
    fn path_ids_decode_uniquely(e in expr_strategy()) {
        let program = program_of(&e);
        let entry = program.entry.unwrap();
        let cfg = ProfilingCfg::build(program.method(entry));
        let num = PathNumbering::compute(&cfg, 1 << 12);
        let start = cfg.entry();
        let total = num.num_paths_from(start).min(256);
        let mut seen = std::collections::HashSet::new();
        for id in 0..total {
            prop_assert!(seen.insert(num.decode(&cfg, start, id)));
        }
    }
}

// ------------------------------------------------------------ ordering laws

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `order_objects` always returns a permutation of the snapshot, for
    /// any profile (junk ids included).
    #[test]
    fn object_order_is_always_a_permutation(profile_ids in proptest::collection::vec(any::<u64>(), 0..64)) {
        let e = Expr::Const(7);
        let mut pb = ProgramBuilder::new();
        let cell = pb.add_class("prop.Cell", None);
        let val = pb.add_instance_field(cell, "v", TypeRef::Int);
        let holder = pb.add_class("prop.Holder", None);
        let field = pb.add_static_field(holder, "CELLS", TypeRef::array_of(TypeRef::Object(cell)));
        let cl = pb.declare_clinit(holder);
        let mut f = pb.body(cl);
        let n = f.iconst(20);
        let arr = f.new_array(TypeRef::Object(cell), n);
        let from = f.iconst(0);
        f.for_range(from, n, |f, i| {
            let o = f.new_object(cell);
            f.put_field(o, val, i);
            f.array_set(arr, i, o);
        });
        f.put_static(field, arr);
        f.ret(None);
        pb.finish_body(cl, f);
        let mainc = pb.add_class("prop.Main", None);
        let main = pb.declare_static(mainc, "main", &[], Some(TypeRef::Int));
        let mut f = pb.body(main);
        let a = f.get_static(field);
        let _ = a;
        let v = emit_expr(&mut f, &e);
        f.ret(Some(v));
        pb.finish_body(main, f);
        pb.set_entry(main);
        let program = pb.build().unwrap();

        let reach = analyze(&program, &AnalysisConfig::default());
        let compiled = compile(&program, reach, &InlineConfig::default(), InstrumentConfig::NONE, None);
        let snap = snapshot(&program, &compiled, &HeapBuildConfig::default()).unwrap();
        let ids = assign_ids(&program, &snap, HeapStrategy::HeapPath);
        let order = order_objects(&snap, &ids, &HeapOrderProfile { ids: profile_ids, spans: vec![] });
        prop_assert_eq!(order.len(), snap.entries().len());
        let set: std::collections::HashSet<_> = order.iter().copied().collect();
        prop_assert_eq!(set.len(), order.len());
        // The permuted layout still builds a valid image.
        let image = BinaryImage::build(&compiled, &snap, None, Some(order), ImageOptions::default());
        prop_assert!(image.svm_heap.size > 0);
    }
}

// ------------------------------------------------------------- paging laws

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fault counts are monotone in touches, idempotent per page, and
    /// bounded by the distinct-window count.
    #[test]
    fn paging_laws(
        touches in proptest::collection::vec(0u64..200, 1..100),
        window_log in 0u32..6,
    ) {
        let e = Expr::Const(1);
        let program = program_of(&e);
        let reach = analyze(&program, &AnalysisConfig::default());
        let compiled = compile(&program, reach, &InlineConfig::default(), InstrumentConfig::NONE, None);
        let snap = snapshot(&program, &compiled, &HeapBuildConfig::default()).unwrap();
        let image = BinaryImage::build(&compiled, &snap, None, None, ImageOptions::default());
        let window = 1u64 << window_log;
        let mut sim = PagingSim::new(&image, PagingConfig { fault_around_pages: window });
        let page_size = image.options.page_size;
        let mut distinct_windows = std::collections::HashSet::new();
        let mut faults = 0u64;
        for &p in &touches {
            let page = p % image.total_pages().max(1);
            let offset = page * page_size;
            if sim.touch(&image, offset) {
                faults += 1;
            }
            // Second touch never faults.
            prop_assert!(!sim.touch(&image, offset));
            distinct_windows.insert(page / window);
        }
        prop_assert_eq!(sim.faults().total(), faults);
        prop_assert!(faults as usize <= distinct_windows.len());
    }
}
