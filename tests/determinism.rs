//! Acceptance: the determinism audit passes on a full AWFY pipeline.
//!
//! Two builds of the same program — with the allocator deliberately perturbed
//! between them — must produce byte-identical images and identical ordering
//! CSVs, both with and without ordering profiles from a real profiling run.

use nimage::verify::{audit_determinism, DeterminismInputs};
use nimage::vm::StopWhen;
use nimage::workloads::{Awfy, RuntimeScale};
use nimage::{BuildOptions, Engine, EngineOptions, Pipeline, Strategy, WorkloadSpec};

#[test]
fn unprofiled_awfy_pipeline_is_deterministic() {
    let program = Awfy::Bounce.program_at(&RuntimeScale::small());
    let report = audit_determinism(&program, &DeterminismInputs::default());
    assert!(report.is_deterministic(), "{:?}", report.diagnostics);
    assert!(report.image_identical);
    assert!(report.cu_order_identical);
    assert!(report.object_order_identical);
}

#[test]
fn profiled_awfy_pipeline_is_deterministic() {
    let program = Awfy::Sieve.program_at(&RuntimeScale::small());
    let pipeline = Pipeline::new(&program, BuildOptions::default());
    let prof = pipeline
        .profiling_run(StopWhen::Exit)
        .expect("profiling run succeeds");
    let strategy = Strategy::CuPlusHeapPath;
    let heap_strategy = strategy.heap_strategy().expect("strategy orders the heap");
    let inputs = DeterminismInputs {
        cu_profile: Some(&prof.cu_profile),
        heap_profile: Some(&prof.heap_profiles[&heap_strategy]),
        heap_strategy: Some(heap_strategy),
    };
    let report = audit_determinism(&program, &inputs);
    assert!(report.is_deterministic(), "{:?}", report.diagnostics);
}

/// Shifts allocator and hasher state the way the verify-crate audit does:
/// interleaved heap allocations plus a few `HashMap`s, kept live with
/// `black_box`, so later allocations land at different addresses and later
/// `RandomState` seeds differ.
fn perturb_allocator(n: usize) {
    let mut keep: Vec<Vec<u8>> = Vec::with_capacity(n);
    for i in 0..n {
        keep.push(vec![0u8; 17 + 31 * i]);
    }
    let mut maps: Vec<std::collections::HashMap<usize, usize>> = vec![];
    for _ in 0..4 {
        let mut m = std::collections::HashMap::new();
        for i in 0..n {
            m.insert(i, i.wrapping_mul(0x9e37_79b9));
        }
        maps.push(m);
    }
    std::hint::black_box(&keep);
    std::hint::black_box(&maps);
}

/// The engine's content-keyed cache and worker threads must not leak
/// allocator or hash-seed state into results: a fresh engine after a
/// deliberate allocator perturbation reproduces every cell verbatim.
#[test]
fn cached_engine_evaluation_is_allocator_independent() {
    let program = Awfy::Sieve.program_at(&RuntimeScale::small());
    let evaluate = || {
        let engine = Engine::new(EngineOptions {
            n_threads: 2,
            disk: None,
            trace: Default::default(),
        });
        let spec = WorkloadSpec::new("Sieve", &program, BuildOptions::default(), StopWhen::Exit);
        let rows: Vec<_> = engine
            .evaluate_matrix(std::slice::from_ref(&spec), &Strategy::all())
            .expect("evaluation succeeds")
            .into_iter()
            .map(|c| (c.strategy, c.eval))
            .collect();
        let report = |r: &nimage::vm::RunReport| {
            let mut counts: Vec<(&str, u64)> = r.call_counts.iter().collect();
            counts.sort_unstable();
            format!(
                "ops={} faults={:?} exit={:?} ret={:?} text={:?} heap={:?} counts={counts:?}",
                r.ops, r.faults, r.exit, r.entry_return, r.text_page_states, r.heap_page_states,
            )
        };
        rows.iter()
            .map(|(s, e)| {
                format!(
                    "{s:?} base[{}] opt[{}]",
                    report(&e.baseline),
                    report(&e.optimized)
                )
            })
            .collect::<Vec<String>>()
    };
    let first = evaluate();
    perturb_allocator(0x35);
    let second = evaluate();
    assert_eq!(
        first, second,
        "perturbed allocator must not change cached evaluation results"
    );
}
