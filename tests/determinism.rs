//! Acceptance: the determinism audit passes on a full AWFY pipeline.
//!
//! Two builds of the same program — with the allocator deliberately perturbed
//! between them — must produce byte-identical images and identical ordering
//! CSVs, both with and without ordering profiles from a real profiling run.

use nimage::verify::{audit_determinism, DeterminismInputs};
use nimage::vm::StopWhen;
use nimage::workloads::{Awfy, RuntimeScale};
use nimage::{BuildOptions, Pipeline, Strategy};

#[test]
fn unprofiled_awfy_pipeline_is_deterministic() {
    let program = Awfy::Bounce.program_at(&RuntimeScale::small());
    let report = audit_determinism(&program, &DeterminismInputs::default());
    assert!(report.is_deterministic(), "{:?}", report.diagnostics);
    assert!(report.image_identical);
    assert!(report.cu_order_identical);
    assert!(report.object_order_identical);
}

#[test]
fn profiled_awfy_pipeline_is_deterministic() {
    let program = Awfy::Sieve.program_at(&RuntimeScale::small());
    let pipeline = Pipeline::new(&program, BuildOptions::default());
    let prof = pipeline
        .profiling_run(StopWhen::Exit)
        .expect("profiling run succeeds");
    let strategy = Strategy::CuPlusHeapPath;
    let heap_strategy = strategy.heap_strategy().expect("strategy orders the heap");
    let inputs = DeterminismInputs {
        cu_profile: Some(&prof.cu_profile),
        heap_profile: Some(&prof.heap_profiles[&heap_strategy]),
        heap_strategy: Some(heap_strategy),
    };
    let report = audit_determinism(&program, &inputs);
    assert!(report.is_deterministic(), "{:?}", report.diagnostics);
}
