#!/usr/bin/env python3
"""Validate a `nimage bench --json` report against ci/report_schema.json.

Stdlib only — implements the subset of JSON Schema the checked-in schema
uses: type (including union types and null), const, required, properties,
items, minimum. The report_version gate is the schema's `const` on
`report_version`: a report from an incompatible writer fails loudly here
instead of being misparsed downstream.

Usage: validate_report.py BENCH_eval.json [more.json ...]

Each file may be either a bare report (`Report::to_json` output) or a
bench envelope with the report nested under its "report" key; in the
envelope case the top-level "report_version" must match the nested one.
"""

import json
import sys
from pathlib import Path

SCHEMA = json.loads((Path(__file__).parent / "report_schema.json").read_text())

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def check(value, schema, path, errors):
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
        return
    if "type" in schema:
        allowed = schema["type"]
        if isinstance(allowed, str):
            allowed = [allowed]
        # bool is an int subclass in Python; keep integer strict.
        ok = any(
            isinstance(value, TYPES[t]) and not (t in ("integer", "number") and isinstance(value, bool))
            for t in allowed
        )
        if not ok:
            errors.append(f"{path}: expected {'/'.join(allowed)}, got {type(value).__name__}")
            return
    if value is None:
        return  # a union with null: nothing further to check
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                check(value[key], sub, f"{path}.{key}", errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            check(item, schema["items"], f"{path}[{i}]", errors)
    if "minimum" in schema and isinstance(value, (int, float)) and not isinstance(value, bool):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")


def validate_file(name):
    doc = json.loads(Path(name).read_text())
    report = doc.get("report", doc) if isinstance(doc, dict) else doc
    errors = []
    if report is not doc:
        if doc.get("report_version") != report.get("report_version"):
            errors.append(
                f"envelope report_version {doc.get('report_version')!r} "
                f"!= report.report_version {report.get('report_version')!r}"
            )
    check(report, SCHEMA, "report", errors)
    for e in errors:
        print(f"{name}: {e}", file=sys.stderr)
    if not errors:
        print(f"{name}: valid (report_version {report.get('report_version')})")
    return not errors


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    return 0 if all([validate_file(f) for f in sys.argv[1:]]) else 1


if __name__ == "__main__":
    sys.exit(main())
