//! Minimal, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no registry access, so this in-repo crate
//! implements the slice of proptest the workspace's property tests use:
//! the [`proptest!`] / [`prop_oneof!`] / `prop_assert*` macros, integer
//! range strategies, `any::<T>()`, tuple strategies, `collection::vec`,
//! and the `prop_map` / `prop_flat_map` / `prop_recursive` combinators.
//!
//! Differences from real proptest: generation is driven by a fixed
//! per-test seed (fully deterministic, no `PROPTEST_*` env handling), and
//! failing cases are reported without shrinking.

pub mod strategy;

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait.

    use std::fmt;
    use std::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range generation strategy.
    pub trait Arbitrary: Sized + fmt::Debug {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy generating unconstrained values of `T`.
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any {
                _marker: PhantomData,
            }
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Deterministic runner state: config, RNG, failure type.

    use std::fmt;

    /// Per-`proptest!` configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// A failed property (carried out of the test body by `prop_assert*`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with the given explanation.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic xorshift64* generator seeded per test.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG seeded from the test name, so every test gets a distinct
        /// but reproducible stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

pub mod prelude {
    //! The glob-importable API surface.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (@body [$cfg:expr] $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..__config.cases {
                    let ( $($arg,)+ ) =
                        $crate::strategy::Strategy::generate(&( $($strat,)+ ), &mut __rng);
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = __result {
                        panic!(
                            "property '{}' failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body [$cfg] $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body [$crate::test_runner::Config::default()] $($rest)*);
    };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?}` == `{:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{:?}` != `{:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a != *__b, $($fmt)+);
    }};
}
