//! The [`Strategy`] trait and its combinators.

use std::fmt;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree or shrinking: a strategy is
/// just a cloneable generator function over a deterministic RNG.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| self.generate(rng)),
        }
    }

    /// Applies `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
    where
        Self: 'static,
        O: fmt::Debug + 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| f(self.generate(rng))),
        }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it.
    fn prop_flat_map<S, F>(self, f: F) -> BoxedStrategy<S::Value>
    where
        Self: 'static,
        S: Strategy,
        S::Value: 'static,
        F: Fn(Self::Value) -> S + 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| f(self.generate(rng)).generate(rng)),
        }
    }

    /// Builds recursive values: `self` is the leaf strategy, and `recurse`
    /// derives an inner level from the strategy for the level below it.
    /// Depth is capped at `depth`; every level mixes leaves back in so
    /// generation always terminates.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut current = self.clone().boxed();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            current = Union::new(vec![self.clone().boxed(), deeper]).boxed();
        }
        current
    }
}

/// A type-erased, cloneable strategy.
pub struct BoxedStrategy<T> {
    pub(crate) gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice over same-typed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given arms.
    ///
    /// # Panics
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (*self.start() as i128 + offset) as $t
            }
        }
    )+};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategies!(A);
tuple_strategies!(A, B);
tuple_strategies!(A, B, C);
tuple_strategies!(A, B, C, D);
tuple_strategies!(A, B, C, D, E);
tuple_strategies!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..256 {
            let v = (-5i32..7).generate(&mut rng);
            assert!((-5..7).contains(&v));
            let w = (3u64..=3).generate(&mut rng);
            assert_eq!(w, 3);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(i32),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i32..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::for_test("recursive");
        for _ in 0..64 {
            // Union depth 3 over leaves bounds nesting at 4 levels.
            assert!(depth(&strat.generate(&mut rng)) <= 4);
        }
    }
}
