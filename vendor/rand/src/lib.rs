//! Minimal, API-compatible subset of the `rand` crate.
//!
//! Provides exactly what the workspace uses: a seedable [`rngs::SmallRng`]
//! and [`seq::SliceRandom::shuffle`]. The generator is a SplitMix64-seeded
//! xorshift64* — statistically fine for test perturbation, not for crypto.

/// A source of random 64-bit values.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from an integer seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, non-cryptographic generator (xorshift64*).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 scrambles low-entropy seeds (0, 1, 2, ...).
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            SmallRng {
                state: z | 1, // xorshift state must be non-zero
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_sensitive() {
        let base: Vec<u32> = (0..64).collect();
        let mut x = base.clone();
        let mut y = base.clone();
        x.shuffle(&mut SmallRng::seed_from_u64(1));
        y.shuffle(&mut SmallRng::seed_from_u64(2));
        let mut xs = x.clone();
        xs.sort_unstable();
        assert_eq!(xs, base);
        assert_ne!(x, y, "different seeds should permute differently");
    }
}
