//! Minimal, API-compatible subset of the `bytes` crate.
//!
//! The build environment has no registry access, so this in-repo crate
//! provides the small surface the workspace actually uses: `Bytes`,
//! `BytesMut`, and the big-endian `Buf`/`BufMut` accessors.

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer (plain owned storage; no refcounted slices).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Drops all contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Read access to a byte cursor; integers use network (big-endian) order.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Skips `n` bytes.
    ///
    /// # Panics
    /// Panics if fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// Copies out the next `dst.len()` bytes.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Append access to a byte sink; integers use network (big-endian) order.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16(0x0102);
        b.put_u32(0xdead_beef);
        b.put_u64(u64::MAX - 1);
        b.put_slice(b"xy");
        let frozen = b.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16(), 0x0102);
        assert_eq!(cur.get_u32(), 0xdead_beef);
        assert_eq!(cur.get_u64(), u64::MAX - 1);
        assert_eq!(cur.remaining(), 2);
        cur.advance(1);
        assert_eq!(cur, b"y");
    }
}
