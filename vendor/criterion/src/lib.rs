//! Minimal, API-compatible subset of the `criterion` crate.
//!
//! Offers just enough surface for the workspace's microbenches to compile
//! and run: each registered benchmark executes its body a few times and
//! reports wall-clock time per iteration. No statistics, plots, or CLI.

use std::time::Instant;

/// Number of timed iterations per benchmark (keep runs fast).
const ITERATIONS: u32 = 10;

/// Passed to each benchmark closure; runs the measured body.
pub struct Bencher {
    elapsed_ns: u128,
    iters: u32,
}

impl Bencher {
    /// Times `body` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..ITERATIONS {
            std::hint::black_box(body());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
        self.iters = ITERATIONS;
    }
}

/// Benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one benchmark immediately and prints its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            elapsed_ns: 0,
            iters: 1,
        };
        f(&mut b);
        let per_iter = b.elapsed_ns / u128::from(b.iters.max(1));
        println!("bench {id}: {per_iter} ns/iter");
        self
    }
}

/// Opaque-to-the-optimizer identity, re-exported for convenience.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        #[allow(dead_code)]
        fn main() {
            $( $group(); )+
        }
    };
}
