//! # nimage — Improving Native-Image Startup Performance, in Rust
//!
//! A from-scratch reproduction of *Improving Native-Image Startup
//! Performance* (Basso, Prokopec, Rosà, Binder — CGO '25): profile-guided
//! reordering of the code (`.text`) and heap-snapshot (`.svm_heap`)
//! sections of ahead-of-time-compiled binaries, to reduce the page faults
//! that dominate cold-start time in Serverless/FaaS deployments.
//!
//! This crate is a facade over the workspace:
//!
//! * [`ir`] — a miniature class-based object language (the Java stand-in);
//! * [`analysis`] — reachability/points-to analysis with saturation;
//! * [`compiler`] — inliner, compilation units, instrumentation,
//!   Ball–Larus path profiling;
//! * [`heap`] — build-time initializer execution and heap snapshotting;
//! * [`image`] — binary layout (`.text` / `.svm_heap`, 4 KiB pages);
//! * [`profiler`] — per-thread trace buffers and the two dump modes;
//! * [`vm`] — a deterministic interpreter with a demand-paging simulator;
//! * [`order`] — the paper's contribution: the code- and heap-ordering
//!   strategies and the cross-build object-identity matching;
//! * [`core`] — the end-to-end pipeline of the paper's Fig. 1;
//! * [`workloads`] — the evaluation programs: 14 AWFY benchmarks and three
//!   microservice frameworks.
//!
//! ## Quickstart
//!
//! ```
//! use nimage::{Pipeline, BuildOptions, Strategy};
//! use nimage::vm::StopWhen;
//! use nimage::workloads::{Awfy, RuntimeScale};
//!
//! # fn main() -> Result<(), nimage::PipelineError> {
//! let program = Awfy::Sieve.program_at(&RuntimeScale::small());
//! let pipeline = Pipeline::new(&program, BuildOptions::default());
//! let eval = pipeline.evaluate(Strategy::CuPlusHeapPath, StopWhen::Exit)?;
//! assert!(eval.reported_fault_reduction() >= 1.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use nimage_core::{
    ArtifactCache, Baseline, BuildOptions, BuildRequest, BuiltImage, CacheKey, CellReport, Engine,
    EngineOptions, EngineStats, EvalInputs, EvalOutcome, EvalRequest, Evaluation, MatrixCell, Memo,
    MemoStats, MetricsSnapshot, Pipeline, PipelineError, ProfiledArtifacts, Report, RunParts,
    StageReport, StageTimes, Strategy, TraceOptions, TraceSummary, Tracer, WorkloadSpec,
    REPORT_VERSION,
};

/// The miniature object-language IR.
pub mod ir {
    pub use nimage_ir::*;
}
/// Reachability analysis with saturation.
pub mod analysis {
    pub use nimage_analysis::*;
}
/// Inliner, compilation units and path profiling.
pub mod compiler {
    pub use nimage_compiler::*;
}
/// Build-time heap and snapshotting.
pub mod heap {
    pub use nimage_heap::*;
}
/// Binary image layout.
pub mod image {
    pub use nimage_image::*;
}
/// Trace collection.
pub mod profiler {
    pub use nimage_profiler::*;
}
/// Interpreter VM and paging simulator.
pub mod vm {
    pub use nimage_vm::*;
}
/// Ordering strategies and profile post-processing.
pub mod order {
    pub use nimage_order::*;
}
/// Evaluation workloads.
pub mod workloads {
    pub use nimage_workloads::*;
}

/// Cross-layer static analysis and pipeline invariant verification.
pub mod verify {
    pub use nimage_verify::*;
}
